package core

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// The unified API contract: Execute dispatches to the same memoized
// implementations the legacy entry points adapt to, so results are
// byte-identical through either door.
func TestExecutePointMatchesRun(t *testing.T) {
	cfg, err := Lookup("nat", "10K")
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOpts{Requests: 1200, WarmupFrac: 0.1, Seed: 4, OfferedGbps: 2}
	legacy := NewRunner().Run(cfg, HostCPU, opts)
	res, err := NewRunner().Execute(Workload{Kind: WorkloadPoint, Config: cfg, Platform: HostCPU, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res.Point, legacy) {
		t.Fatalf("Execute diverges from Run:\n execute: %+v\n legacy:  %+v", *res.Point, legacy)
	}
}

func TestExecuteBalancedMatchesRunBalanced(t *testing.T) {
	tr := BurstyTrace(4, 60, 12, 4, 2*sim.Millisecond)
	lb := HWLoadBalancer()
	legacy := NewRunner().RunBalanced(lb, tr, 4, 9)
	res, err := NewRunner().Execute(Workload{Kind: WorkloadBalanced, Balancer: &lb, Trace: tr, HostCores: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res.Balanced, legacy) {
		t.Fatalf("Execute diverges from RunBalanced:\n execute: %+v\n legacy:  %+v", *res.Balanced, legacy)
	}
}

func TestExecuteReplayMatchesReplayTrace(t *testing.T) {
	cfg, err := Lookup("rem", "file_executable")
	if err != nil {
		t.Fatal(err)
	}
	tr := BurstyTrace(3, 20, 10, 5, sim.Millisecond)
	legacy := NewRunner().ReplayTrace(cfg, HostCPU, tr, 21)
	res, err := NewRunner().Execute(Workload{Kind: WorkloadReplay, Config: cfg, Platform: HostCPU, Trace: tr, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res.Replay, legacy) {
		t.Fatalf("Execute diverges from ReplayTrace:\n execute: %+v\n legacy:  %+v", *res.Replay, legacy)
	}
}

// Validation rejects malformed workloads with typed errors before any
// simulation runs.
func TestWorkloadValidateTypedErrors(t *testing.T) {
	cfg, err := Lookup("nat", "10K")
	if err != nil {
		t.Fatal(err)
	}
	accel, err := Lookup("rem", "file_executable")
	if err != nil {
		t.Fatal(err)
	}
	_ = accel
	cases := []struct {
		name  string
		w     Workload
		field string
	}{
		{"unknown kind", Workload{Kind: "bogus"}, "Kind"},
		{"point no config", Workload{Kind: WorkloadPoint}, "Config"},
		{"point wrong platform", Workload{Kind: WorkloadPoint, Config: cfg, Platform: SNICAccel}, "Platform"},
		{"negative rate", Workload{Kind: WorkloadPoint, Config: cfg, Platform: HostCPU,
			Opts: RunOpts{OfferedGbps: -1}}, "Opts.OfferedGbps"},
		{"warmup out of range", Workload{Kind: WorkloadPoint, Config: cfg, Platform: HostCPU,
			Opts: RunOpts{WarmupFrac: 1}}, "Opts.WarmupFrac"},
		{"negative cores", Workload{Kind: WorkloadBalanced, HostCores: -2}, "HostCores"},
		{"replay no trace", Workload{Kind: WorkloadReplay, Config: cfg, Platform: HostCPU}, "Trace"},
		{"server no rates", Workload{Kind: WorkloadServer, Config: cfg, Platform: HostCPU,
			Interval: sim.Millisecond}, "Rates"},
		{"server negative rate", Workload{Kind: WorkloadServer, Config: cfg, Platform: HostCPU,
			Rates: []float64{1, -1}, Interval: sim.Millisecond}, "Rates"},
		{"faulted no router", Workload{Kind: WorkloadFaulted, Scenario: &FaultScenario{}}, "Router"},
		{"pipeline missing", Workload{Kind: WorkloadPipeline}, "Pipeline"},
		{"saturation negative bounds", Workload{Kind: WorkloadSaturation, Pipeline: NATIDSPipeline(),
			Saturation: SaturationOpts{MinGbps: -5}}, "Saturation"},
	}
	r := NewRunner()
	for _, tc := range cases {
		_, err := r.Execute(tc.w)
		var we *WorkloadError
		if !errors.As(err, &we) {
			t.Errorf("%s: want *WorkloadError, got %v", tc.name, err)
			continue
		}
		if we.Field != tc.field {
			t.Errorf("%s: flagged field %q, want %q", tc.name, we.Field, tc.field)
		}
	}
}

// Nested spec validators surface their own typed errors through Execute.
func TestExecutePropagatesNestedValidation(t *testing.T) {
	r := NewRunner()
	bad := NATIDSPipeline()
	bad.Phases[0].MemIntensity = 7
	_, err := r.Execute(Workload{Kind: WorkloadPipeline, Pipeline: bad})
	var pe *PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PipelineError through Execute, got %v", err)
	}
	lb := DefaultLoadBalancer()
	lb.SpillQueueThreshold = -1
	_, err = r.Execute(Workload{Kind: WorkloadBalanced, Balancer: &lb,
		Trace: BurstyTrace(1, 2, 4, 2, sim.Millisecond)})
	var pae *ParamError
	if !errors.As(err, &pae) {
		t.Fatalf("want *ParamError through Execute, got %v", err)
	}
}

func TestLoadBalancerValidate(t *testing.T) {
	lb := DefaultLoadBalancer()
	if err := lb.Validate(); err != nil {
		t.Fatalf("default balancer should validate: %v", err)
	}
	lb.ReactInterval = 0
	var pe *ParamError
	if !errors.As(lb.Validate(), &pe) || pe.Param != "ReactInterval" {
		t.Fatalf("software balancer without ReactInterval should fail: %v", lb.Validate())
	}
	if err := HWLoadBalancer().Validate(); err != nil {
		t.Fatalf("hardware balancer should validate: %v", err)
	}
}

func TestTable4ConfigValidate(t *testing.T) {
	if err := DefaultTable4Config().Validate(); err != nil {
		t.Fatalf("default table4 config should validate: %v", err)
	}
	tc := DefaultTable4Config()
	tc.Trace = nil
	if tc.Validate() == nil {
		t.Fatal("nil trace should fail validation")
	}
	tc = DefaultTable4Config()
	tc.IntervalCompress = 0
	var pe *ParamError
	if !errors.As(tc.Validate(), &pe) || pe.Param != "IntervalCompress" {
		t.Fatalf("non-positive interval compression should fail: %v", tc.Validate())
	}
	tc = DefaultTable4Config()
	tc.HostCores = -1
	if !errors.As(tc.Validate(), &pe) || pe.Param != "HostCores" {
		t.Fatalf("negative host cores should fail: %v", tc.Validate())
	}
}
