package core

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/flow"
	"repro/internal/sim"
)

// shortOffloadSpec shrinks the default scenario for fast unit tests.
func shortOffloadSpec() OffloadSpec {
	spec := DefaultOffloadSpec()
	spec.Trace = BurstyTrace(6, 26, 8, 3, sim.Millisecond)
	return spec
}

func TestOffloadSpecValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*OffloadSpec)
	}{
		{"nil trace", func(s *OffloadSpec) { s.Trace = nil }},
		{"bad mix", func(s *OffloadSpec) { s.Mix.Concurrency = 0 }},
		{"bad table", func(s *OffloadSpec) { s.Table.Capacity = 0 }},
		{"bad static threshold", func(s *OffloadSpec) {
			s.Policy = OffloadPolicy{Kind: OffloadStaticFlow, Threshold: 0}
		}},
		{"bad adaptive", func(s *OffloadSpec) {
			s.Policy = OffloadPolicy{Kind: OffloadAdaptive}
		}},
		{"unknown policy", func(s *OffloadSpec) { s.Policy = OffloadPolicy{Kind: "bogus"} }},
		{"zero control interval", func(s *OffloadSpec) { s.ControlInterval = 0 }},
		{"zero slo", func(s *OffloadSpec) { s.SLO = 0 }},
		{"zero pkt size", func(s *OffloadSpec) { s.PktSize = 0 }},
		{"negative cycles", func(s *OffloadSpec) { s.SlowBaseCycles = -1 }},
		{"negative sigma", func(s *OffloadSpec) { s.SlowSigma = -0.1 }},
		{"zero queue", func(s *OffloadSpec) { s.QueueCap = 0 }},
	}
	r := NewRunner()
	for _, tc := range cases {
		spec := DefaultOffloadSpec()
		tc.mutate(&spec)
		_, err := r.Execute(Workload{Kind: WorkloadOffload, Offload: &spec})
		var we *WorkloadError
		if !errors.As(err, &we) {
			t.Errorf("%s: want *WorkloadError, got %v", tc.name, err)
		}
	}
	if _, err := NewRunner().Execute(Workload{Kind: WorkloadOffload}); err == nil {
		t.Error("nil Offload spec should be rejected")
	}
}

func TestOffloadConservation(t *testing.T) {
	r := NewRunner()
	r.Checks = true // a violation panics the run
	res := r.RunOffload(shortOffloadSpec())
	if res.Sent == 0 {
		t.Fatal("run sent nothing")
	}
	if res.FastPath+res.SlowPath != res.Sent {
		t.Fatalf("datapath split leaks: fast %d + slow %d != sent %d",
			res.FastPath, res.SlowPath, res.Sent)
	}
	if res.Completed+res.Dropped != res.Sent {
		t.Fatalf("request ledger leaks: done %d + dropped %d != sent %d",
			res.Completed, res.Dropped, res.Sent)
	}
	if res.SLOAttainment < 0 || res.SLOAttainment > 1 {
		t.Fatalf("SLO attainment out of range: %g", res.SLOAttainment)
	}
	if res.DropRate < 0 || res.DropRate > 1 {
		t.Fatalf("drop rate out of range: %g", res.DropRate)
	}
	if res.OccupancyPeak > flow.DefaultTableConfig().Capacity {
		t.Fatalf("occupancy peak %d exceeds capacity", res.OccupancyPeak)
	}
}

func TestOffloadExperimentParallelDeterminism(t *testing.T) {
	spec := shortOffloadSpec()
	pols := DefaultOffloadPolicies()

	seq := NewRunner()
	seq.Parallelism = 1
	a := seq.OffloadExperiment(spec, pols)

	par := NewRunner()
	par.Parallelism = 8
	b := par.OffloadExperiment(spec, pols)

	if !reflect.DeepEqual(a, b) {
		t.Fatalf("offload experiment diverges across -j:\nseq: %+v\npar: %+v", a, b)
	}
}

func TestOffloadMemoization(t *testing.T) {
	r := NewRunner()
	spec := shortOffloadSpec()
	a := r.RunOffload(spec)
	sims := r.Sims()
	b := r.RunOffload(spec)
	if r.Sims() != sims {
		t.Fatal("identical offload spec should hit the memo cache")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("memoized result differs from the original")
	}
}

// The headline claim of the offload experiment: under flow churn the
// adaptive controller beats BOTH static policies on SLO attainment at
// equal load. Static per-function floods the insert path and thrashes
// the bounded table; a fixed threshold either reacts too slowly in calm
// periods or too eagerly in churny ones.
func TestOffloadAdaptiveBeatsStaticUnderChurn(t *testing.T) {
	r := NewRunner()
	res := r.OffloadExperiment(DefaultOffloadSpec(), DefaultOffloadPolicies())
	if len(res) != 3 {
		t.Fatalf("want 3 policies, got %d", len(res))
	}
	staticFunc, staticFlow, adaptive := res[0], res[1], res[2]
	t.Logf("static-func: slo=%.4f drop=%.4f fast=%.3f p99=%v thrash=%d rejects=%d",
		staticFunc.SLOAttainment, staticFunc.DropRate, staticFunc.FastPathShare(),
		staticFunc.P99, staticFunc.Thrash, staticFunc.InsertRejects)
	t.Logf("static-flow: slo=%.4f drop=%.4f fast=%.3f p99=%v thrash=%d rejects=%d",
		staticFlow.SLOAttainment, staticFlow.DropRate, staticFlow.FastPathShare(),
		staticFlow.P99, staticFlow.Thrash, staticFlow.InsertRejects)
	t.Logf("adaptive:    slo=%.4f drop=%.4f fast=%.3f p99=%v thrash=%d rejects=%d K=[%d..%d]->%d",
		adaptive.SLOAttainment, adaptive.DropRate, adaptive.FastPathShare(),
		adaptive.P99, adaptive.Thrash, adaptive.InsertRejects,
		adaptive.ThresholdMin, adaptive.ThresholdMax, adaptive.ThresholdFinal)
	if adaptive.SLOAttainment <= staticFunc.SLOAttainment {
		t.Errorf("adaptive (%.4f) should beat static-func (%.4f) on SLO attainment",
			adaptive.SLOAttainment, staticFunc.SLOAttainment)
	}
	if adaptive.SLOAttainment <= staticFlow.SLOAttainment {
		t.Errorf("adaptive (%.4f) should beat static-flow (%.4f) on SLO attainment",
			adaptive.SLOAttainment, staticFlow.SLOAttainment)
	}
}
