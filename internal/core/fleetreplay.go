package core

import (
	"fmt"

	"repro/internal/netstack"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// This file is the fleet-facing server replay: one datacenter server
// driven by the per-interval rate share a fleet dispatcher assigned to
// it. It mirrors replayTrace — same testbed wiring, same open-loop
// interval scheduler — but measures the whole trace (no warmup discard)
// and returns the raw latency histogram so package fleet can merge
// distributions and compute SLO attainment post-hoc at any target.
//
// The SLO target is deliberately NOT part of the memo key: attainment is
// a query against the histogram, so one cached replay answers every SLO.

// ServerReplay is the measured behaviour of one fleet server over its
// assigned rate series.
type ServerReplay struct {
	Platform    Platform
	OfferedGbps float64 // mean of the assigned rate series
	AvgTputGbps float64
	AvgPowerW   float64
	Util        float64 // pool utilization of the serving pool
	Dropped     uint64
	Sent        uint64
	Completed   uint64
	Latency     stats.Summary
	// Hist is the full latency distribution. It is owned by the memo
	// cache and shared between identical servers: treat it as read-only
	// and Merge it into a fresh histogram for fleet-level quantiles.
	Hist *stats.Histogram
	// RunID is this replay's telemetry run identity, derived from the
	// memo key (stable whether or not telemetry is attached).
	RunID uint64
}

// DeliveredFrac is achieved over offered data rate (1 when idle).
func (s ServerReplay) DeliveredFrac() float64 {
	if s.OfferedGbps <= 0 {
		return 1
	}
	return s.AvgTputGbps / s.OfferedGbps
}

// ReplayServer simulates one fleet server fed the given per-interval
// rates (Gb/s, one entry per trace interval of the given length). Runs
// memoize like ReplayTrace does; identical servers — same config,
// platform, rate row, seed and fleet group — share one simulation, which
// is what makes a homogeneous 1000-server fleet under an even-split
// policy cost one simulation instead of a thousand.
func (r *Runner) ReplayServer(cfg *Config, plat Platform, rates []float64, interval sim.Duration, seed uint64, group string) ServerReplay {
	res, err := r.Execute(Workload{Kind: WorkloadServer, Config: cfg, Platform: plat,
		Rates: rates, Interval: interval, Seed: seed, Group: group})
	if err != nil {
		panic(err)
	}
	return *res.Server
}

// replayServerMemo is the memoized fleet-server implementation behind
// Execute and ReplayServer.
func (r *Runner) replayServerMemo(cfg *Config, plat Platform, rates []float64, interval sim.Duration, seed uint64, group string) ServerReplay {
	key := serverKey(cfg, plat, r.TBConfig, rates, int64(interval), seed, group)
	if res, ok := r.cache.lookupServer(key); ok {
		return res
	}
	res := r.replayServer(cfg, plat, rates, interval, seed, key)
	r.cache.storeServer(key, res)
	return res
}

// replayServer executes one fleet-server replay on a fresh testbed.
func (r *Runner) replayServer(cfg *Config, plat Platform, rates []float64, interval sim.Duration, seed uint64, key string) ServerReplay {
	r.sims.Add(1)
	tr := &trace.HyperscalerTrace{Interval: interval, RatesGbps: rates}
	label := fmt.Sprintf("fleet server %s @ %s | tr %s | seed %d",
		cfg.Name(), plat, traceFingerprint(tr), seed)
	seed = r.runSeed(seed)
	tbc := r.TBConfig
	tbc.Seed ^= seed
	if cfg.HostCores > 0 {
		tbc.HostCores = cfg.HostCores
	}
	if cfg.SNICCores > 0 {
		tbc.SNICCores = cfg.SNICCores
	}
	tb := NewTestbed(tbc)
	ctx := &runctx{
		tb: tb, cfg: cfg, plat: plat,
		opts:     RunOpts{Requests: 1 << 62, Seed: seed}, // the rate series decides the end
		prof:     netstack.ByKind(cfg.Stack),
		arrivals: trace.NewPoissonArrivals(seed ^ 0xabcdef),
		jit:      sim.NewRNG(seed ^ 0x1234),
		hist:     stats.NewHistogram(),
		// Every completion counts: fleet attainment must see the whole
		// trace, so the meter opens at t=0 and warmup never triggers.
		meter:   stats.NewMeter(0),
		warmupN: -1,
	}
	ctx.sizes = trace.Fixed(cfg.ReqSize)
	ctx.pool = tb.PoolFor(plat)
	ctx.pool.JitterSigma = 0
	ctx.pool.SetQueueCapacity(4096)
	ctx.ep = netstack.NewEndpoint(tb.Eng, ctx.prof, ctx.pool, seed^0x77)

	ctx.rec = r.newRecorder(key, label)
	ctx.chk = r.newChecker(label)
	instrumentTestbed(tb, ctx.rec, ctx.chk)

	switch plat {
	case HostCPU:
		tb.ActivateSNICPools(0, 0)
		tb.SetPolling(HostCPU, true)
		tb.SetHostTrafficShare(1)
	case SNICCPU:
		tb.ActivateSNICPools(1, 0)
		tb.SetPolling(SNICCPU, true)
		tb.SetHostTrafficShare(0)
	case SNICAccel:
		tb.ActivateSNICPools(0, 1)
		tb.SetPolling(SNICCPU, true)
		tb.SetHostTrafficShare(0)
	}

	dest := nic.ToHostCPU
	switch plat {
	case SNICCPU:
		dest = nic.ToSNICCPU
	case SNICAccel:
		dest = nic.ToAccelerator
	}
	tb.Sw.Program(func(*nic.Packet) nic.Destination { return dest })
	tb.Sw.Connect(nic.ToHostCPU, ctx.cpuSink)
	tb.Sw.Connect(nic.ToSNICCPU, ctx.cpuSink)
	tb.Sw.Connect(nic.ToAccelerator, ctx.accelSink)

	eng := tb.Eng
	var runInterval func(i int)
	runInterval = func(i int) {
		if i >= len(rates) {
			ctx.lastSend = eng.Now()
			return
		}
		rate := rates[i]
		end := eng.Now().Add(interval)
		var submit func()
		submit = func() {
			if eng.Now() >= end {
				runInterval(i + 1)
				return
			}
			if rate > 0 {
				ctx.sent++
				size := ctx.sizes.Next(ctx.jit)
				pkt := &nic.Packet{Seq: uint64(ctx.sent), Size: size, SentAt: eng.Now(),
					Span: uint32(ctx.openRequest())}
				ctx.noteInject(pkt.Seq, size)
				tb.Wire.SendToServer(pkt, tb.Sw.Ingress)
				eng.After(ctx.arrivals.Gap(size, rate*1e9), submit)
			} else {
				eng.At(end, submit)
			}
		}
		submit()
	}
	eng.At(0, func() { runInterval(0) })
	eng.Run()
	ctx.finishEngineUtil()
	r.finishChecks(ctx)
	r.finishRecorder(ctx)

	var offered float64
	for _, v := range rates {
		offered += v
	}
	if len(rates) > 0 {
		offered /= float64(len(rates))
	}
	res := ServerReplay{
		Platform:    plat,
		OfferedGbps: offered,
		Dropped:     ctx.pool.Dropped(),
		Sent:        uint64(ctx.sent),
		Completed:   uint64(ctx.done),
		Latency:     ctx.hist.Summarize(),
		Hist:        ctx.hist,
		RunID:       obs.DeriveRunID(key),
	}
	ctx.meter.Close(ctx.lastSend)
	res.AvgTputGbps = ctx.meter.Gbps()
	switch plat {
	case SNICAccel:
		res.Util = tb.StagingPool.Utilization()
	case SNICCPU:
		res.Util = tb.SNICPool.Utilization()
	default:
		res.Util = tb.HostPool.Utilization()
	}
	res.AvgPowerW = float64(tb.Power.Server.Power())
	return res
}
