package core

import (
	"fmt"
	"sort"

	"repro/internal/accel"
	"repro/internal/fault"
	"repro/internal/invariant"
	"repro/internal/netstack"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// FailoverPolicy governs how the testbed reacts when the SNIC datapath
// degrades: each request carries a virtual-time timeout guard, lost or
// stuck requests retry with exponential backoff up to a bounded count,
// and accelerator-bound work re-routes to the host CPU when the engine
// is unhealthy or its backlog crosses a watermark. This is the recovery
// side of the fault-injection layer (see internal/fault): §5.3's load
// balancer assumes a healthy datapath; the policy extends it to survive
// the engine stalls and link flaps BlueField-class hardware exhibits.
type FailoverPolicy struct {
	// Timeout is the per-request guard: a request with no response after
	// this long is presumed lost and becomes eligible for retry.
	Timeout sim.Duration
	// MaxRetries bounds re-sends per request; past it the request drops.
	MaxRetries int
	// BackoffBase is the wait before the first retry; each further retry
	// multiplies it by BackoffMult.
	BackoffBase sim.Duration
	BackoffMult float64
	// QueueWatermark is the accelerator backlog (staged + queued tasks)
	// above which the router prefers the host even while the engine is
	// nominally healthy — the SLO-aware spill of the §5.3 balancer.
	QueueWatermark int
}

// DefaultFailoverPolicy returns a policy tuned to the trace replays:
// the timeout clears normal p99 by an order of magnitude, and the retry
// schedule spans a short link flap.
func DefaultFailoverPolicy() FailoverPolicy {
	return FailoverPolicy{
		Timeout:        300 * sim.Microsecond,
		MaxRetries:     4,
		BackoffBase:    100 * sim.Microsecond,
		BackoffMult:    2,
		QueueWatermark: 96,
	}
}

// Backoff returns the wait before retry number attempt (1-based).
func (p FailoverPolicy) Backoff(attempt int) sim.Duration {
	d := float64(p.BackoffBase)
	mult := p.BackoffMult
	if mult < 1 {
		mult = 1
	}
	for i := 1; i < attempt; i++ {
		d *= mult
	}
	return sim.Duration(d)
}

// MaxDelay bounds the time between a request's first send and the moment
// the policy gives up on it: MaxRetries+1 timeout windows plus every
// backoff wait. Experiments use it to bound recovery time and to size
// the post-trace drain.
func (p FailoverPolicy) MaxDelay() sim.Duration {
	d := p.Timeout
	for k := 1; k <= p.MaxRetries; k++ {
		d += p.Backoff(k) + p.Timeout
	}
	return d
}

// HealthRouter extends the §5.3 LoadBalancer into a health-aware router:
// besides the balancer's backlog spill it consults the engine's health,
// so a crashed or stalled accelerator sheds all new work to the host
// immediately instead of queueing into a dead pipeline.
type HealthRouter struct {
	LB     LoadBalancer
	Policy FailoverPolicy
}

// NewHealthRouter combines a balancer and a failover policy.
func NewHealthRouter(lb LoadBalancer, pol FailoverPolicy) *HealthRouter {
	return &HealthRouter{LB: lb, Policy: pol}
}

// Route picks a destination from live accelerator state. Anything but a
// healthy engine goes to the host; so does a backlog above the policy
// watermark (falling back to the balancer's spill threshold when unset).
func (hr *HealthRouter) Route(h accel.Health, backlog int) nic.Destination {
	if h != accel.Healthy {
		return nic.ToHostCPU
	}
	limit := hr.Policy.QueueWatermark
	if limit <= 0 {
		limit = hr.LB.SpillQueueThreshold
	}
	if backlog > limit {
		return nic.ToHostCPU
	}
	return nic.ToAccelerator
}

// FaultScenario is a named fault plan replayed against the trace.
type FaultScenario struct {
	Name string
	Desc string
	Plan fault.Plan
}

// DefaultFaultScenarios returns the experiment family's three scenarios,
// with windows placed relative to the trace span: an accelerator crash
// that exercises host failover, a link flap that exercises timeout/retry
// recovery, and an SNIC staging-core throttle that exercises SLO-aware
// re-routing via the queue watermark.
func DefaultFaultScenarios(span sim.Duration) []FaultScenario {
	q := span / 4
	var crash, flap, throttle fault.Plan
	crash.Add(fault.Event{At: sim.Time(q), For: q, Kind: fault.EngineCrash, Target: "rem"})
	flap.Add(fault.Event{At: sim.Time(span / 3), For: 1500 * sim.Microsecond, Kind: fault.LinkFlap, Target: "wire"})
	// 1%: the staging cores are effectively wedged (firmware-level stall),
	// not merely running hot — a milder cap is absorbed invisibly at trace
	// rates because staging per-packet cost is only a few hundred cycles.
	throttle.Add(fault.Event{At: sim.Time(q), For: q, Kind: fault.CoreThrottle, Target: "staging", Factor: 0.01})
	return []FaultScenario{
		{Name: "accel-crash", Desc: "REM engine down for a quarter of the trace; router fails over to the host", Plan: crash},
		{Name: "link-flap", Desc: "wire loses carrier for 1.5 ms; timeouts and backoff retries rescue in-flight requests", Plan: flap},
		{Name: "snic-throttle", Desc: "staging cores throttled to 1% for a quarter of the trace; watermark re-routes to the host", Plan: throttle},
	}
}

// FaultResult reports one scenario replay. All fields are comparable, so
// two runs of the same seed can be checked for bit-identity with ==.
type FaultResult struct {
	Scenario string

	Total     uint64
	Completed uint64
	// Dropped counts requests abandoned after exhausting retries.
	Dropped uint64
	// Retries counts re-sends; Rescued counts requests that completed
	// only after at least one retry.
	Retries uint64
	Rescued uint64
	// FailedOver counts staged tasks rejected by a crashed engine and
	// re-served on the host instead of being lost.
	FailedOver uint64

	HostShare   float64
	AvgTputGbps float64
	// MinDeliveredFrac is the worst per-interval delivered fraction —
	// the depth of the throughput dip the fault carved out.
	MinDeliveredFrac float64

	// P99 splits: requests first sent before, during and after the fault
	// window. P99Post recovering to the fault-free baseline is the
	// experiment's headline invariant.
	P99      sim.Duration
	P99Pre   sim.Duration
	P99Fault sim.Duration
	P99Post  sim.Duration
	// RecoveryTime is how long past the fault window the last fault-era
	// request needed to complete (0 when the backlog drained in-window).
	RecoveryTime sim.Duration

	AvgPowerW float64
	// Transitions is the number of fault begin/clear events applied.
	Transitions    int
	WireFramesLost uint64
	EngineRejected uint64

	// BMCMissedSamples / YoctoMissedSamples count sensor ticks that fell
	// inside injected dropout windows (fault.SensorDropout). The report
	// surfaces them so a power average over a gapped trace is never
	// mistaken for a clean measurement.
	BMCMissedSamples   uint64
	YoctoMissedSamples uint64
}

func (f FaultResult) String() string {
	return fmt.Sprintf("%s: %.2f Gb/s (dip %.0f%%), p99 pre/fault/post %v/%v/%v, recovery %v, %d retries, %d rescued, %d dropped",
		f.Scenario, f.AvgTputGbps, f.MinDeliveredFrac*100, f.P99Pre, f.P99Fault, f.P99Post,
		f.RecoveryTime, f.Retries, f.Rescued, f.Dropped)
}

// RunFaulted replays a rate trace of MTU REM packets while the
// scenario's fault plan runs, with the health router steering between
// the SNIC accelerator and the host CPU and the failover policy's
// timeout/retry machinery recovering lost requests. A scenario with an
// empty plan is the fault-free baseline.
//
// RunFaulted is a thin adapter over Execute (the unified Workload API).
func (r *Runner) RunFaulted(scn FaultScenario, hr *HealthRouter, tr *trace.HyperscalerTrace, hostCores int, seed uint64) FaultResult {
	res, err := r.Execute(Workload{Kind: WorkloadFaulted, Scenario: &scn, Router: hr,
		Trace: tr, HostCores: hostCores, Seed: seed})
	if err != nil {
		panic(err)
	}
	return *res.Fault
}

// runFaultedImpl is the faulted-replay implementation behind
// Execute and RunFaulted.
func (r *Runner) runFaultedImpl(scn FaultScenario, hr *HealthRouter, tr *trace.HyperscalerTrace, hostCores int, seed uint64) FaultResult {
	cfg := remMTU(trace.RuleSetExecutable)
	pol := hr.Policy
	rkey := fmt.Sprintf("fault|%s|tb:%+v|cores:%d|pol:%+v|lb:%+v|tr:%s|seed:%d",
		scn.Name, r.TBConfig, hostCores, pol, hr.LB, traceFingerprint(tr), seed)
	rlabel := fmt.Sprintf("fault %s | cores %d | seed %d", scn.Name, hostCores, seed)
	seed = r.runSeed(seed)
	tbc := r.TBConfig
	tbc.Seed ^= seed
	if hostCores > 0 {
		tbc.HostCores = hostCores
	}
	tb := NewTestbed(tbc)
	eng := tb.Eng

	jit := sim.NewRNG(seed ^ 0x1234)
	arrivals := trace.NewPoissonArrivals(seed ^ 0xabcdef)

	hostPool := tb.HostPool
	hostPool.JitterSigma = 0
	hostPool.SetQueueCapacity(4096)
	staging := tb.StagingPool
	staging.JitterSigma = 0
	staging.SetQueueCapacity(4096)

	tb.ActivateSNICPools(0, 1)
	tb.SetPolling(SNICCPU, true)
	tb.SetPolling(HostCPU, true)

	// Every injectable component registers under a canonical name; plans
	// reference these names (see DefaultFaultScenarios).
	reg := fault.NewRegistry().
		AddEngine("rem", tb.REM).
		AddEngine("deflate", tb.Deflate).
		AddEngine("pka", tb.PKA).
		AddLink("wire", tb.Wire).
		AddPool("host", hostPool).
		AddPool("snic", tb.SNICPool).
		AddPool("staging", staging).
		AddSensor("bmc", tb.BMC).
		AddSensor("yoctowatt", tb.YoctoWatt)
	faultStart := scn.Plan.Start()
	faultEnd := scn.Plan.End()
	// Requests sent while the policy may still be repairing fault-era
	// damage (draining stalled queues, finishing retry chains) belong to
	// the fault population; the post population starts once the policy's
	// own worst-case schedule has provably run out.
	settleEnd := faultEnd.Add(pol.MaxDelay())
	// The run horizon: trace span (or the last fault window, whichever is
	// later) plus a drain long enough for every retry chain to resolve.
	// Computed before Arm so the plan can be validated against it — a
	// malformed plan must die here, not half-armed on the engine.
	span := tr.Duration()
	horizon := sim.Time(span)
	if faultEnd > horizon {
		horizon = faultEnd
	}
	horizon = horizon.Add(100*sim.Millisecond + pol.MaxDelay())
	if err := scn.Plan.Validate(horizon); err != nil {
		panic(err)
	}
	flog := scn.Plan.Arm(eng, reg, nil)

	hostProf := netstack.ByKind(netstack.KindDPDK)
	respSize := cfg.RespSize
	if respSize <= 0 {
		respSize = 64
	}

	// flight tracks one request across retries. done flips on the first
	// delivered response; stragglers from duplicated serves are ignored.
	type flight struct {
		seq       uint64
		size      int
		firstSent sim.Time
		attempts  int
		done      bool
		guard     sim.EventID
		span      obs.SpanID
	}
	inflight := make(map[uint64]*flight)
	var nextSeq uint64

	rec := r.newRecorder(rkey, rlabel)
	chk := r.newChecker(rlabel)
	stage := func(root obs.SpanID, name string, start, end sim.Time) {
		if root != 0 {
			rec.Span(obs.TrackRequests, name, root, start, end)
		}
	}

	nIntervals := len(tr.RatesGbps)
	sentBytes := make([]float64, nIntervals)
	doneBytes := make([]float64, nIntervals)
	intervalOf := func(t sim.Time) int {
		i := int(t / sim.Time(tr.Interval))
		if i >= nIntervals {
			i = nIntervals - 1
		}
		return i
	}

	histAll := stats.NewHistogram()
	histPre := stats.NewHistogram()
	histFault := stats.NewHistogram()
	histPost := stats.NewHistogram()

	var completed, dropped, retries, rescued, failedOver uint64
	var hostServed, snicServed uint64
	var lastFaultEraDone sim.Time

	complete := func(f *flight) {
		if f.done {
			return
		}
		f.done = true
		rec.Close(f.span, eng.Now())
		eng.Cancel(f.guard)
		delete(inflight, f.seq)
		completed++
		chk.Complete(f.seq, f.size, eng.Now())
		lat := eng.Now().Sub(f.firstSent)
		histAll.Record(lat)
		switch {
		case !scn.Plan.Empty() && f.firstSent < faultStart:
			histPre.Record(lat)
		case !scn.Plan.Empty() && f.firstSent < settleEnd:
			histFault.Record(lat)
			if f.firstSent < faultEnd && eng.Now() > lastFaultEraDone {
				lastFaultEraDone = eng.Now()
			}
		default:
			histPost.Record(lat)
		}
		// Delivered bytes bucket by completion time, so a fault that stalls
		// the datapath shows as a dip in the intervals it actually starved
		// (retried requests land their bytes late, where they belong).
		doneBytes[intervalOf(eng.Now())] += float64(f.size)
		if f.attempts > 1 {
			rescued++
		}
	}

	respond := func(f *flight) {
		resp := &nic.Packet{Seq: f.seq, Size: respSize, SentAt: f.firstSent}
		tb.Wire.SendToClient(resp, func(*nic.Packet) { complete(f) })
	}

	// ServiceTime (not raw BaseHz math) so an injected core throttle
	// stretches every service dispatched while it is active.
	var serveHost func(f *flight)
	serveHost = func(f *flight) {
		hostServed++
		cycles := hostProf.RxCycles(tb.HostSpec.Arch, f.size) +
			hostProf.TxCycles(tb.HostSpec.Arch, respSize) +
			cfg.HostBaseCycles + cfg.HostPerByteCycles*float64(f.size)
		svc := jit.LogNormalDur(hostPool.ServiceTime(cycles), cfg.HostSigma)
		hostPool.ExecDuration(svc, func(s, e sim.Time) {
			stage(f.span, spanService, s, e)
			respond(f)
		})
	}
	serveAccel := func(f *flight) {
		snicServed++
		stageCycles := hostProf.RxCycles(tb.SNICSpec.Arch, f.size) + 340 + 0.02*float64(f.size)
		if !hr.LB.HWAssist {
			stageCycles += hr.LB.MonitorCycles
		}
		svc := jit.LogNormalDur(staging.ServiceTime(stageCycles), 0.15)
		staging.ExecDuration(svc, func(s, e sim.Time) {
			stage(f.span, spanStaging, s, e)
			if err := tb.REM.Submit(f.size, func(es, ee sim.Time) {
				stage(f.span, spanEngine, es, ee)
				respond(f)
			}); err != nil {
				// Graceful degradation: a task staged into a crashed
				// engine re-serves on the host instead of being lost.
				snicServed--
				failedOver++
				serveHost(f)
			}
		})
	}

	// The software balancer sees backlog at its react interval; the
	// hardware one sees it instantly. Health is always instant: a dead
	// engine NACKs doorbells, which even a software router observes.
	backlog := func() int { return staging.QueueLen() + tb.REM.QueueLen()*16 }
	backlogView := 0
	if !hr.LB.HWAssist {
		var refresh func()
		refresh = func() {
			backlogView = backlog()
			eng.After(hr.LB.ReactInterval, refresh)
		}
		eng.At(0, refresh)
	}
	// Failover-specific gauges ride alongside the standard testbed set;
	// both must be registered before instrumentTestbed starts the sampler.
	rec.Gauge("failover/engine-healthy", "bool", 0, func() float64 {
		if tb.REM.Health() == accel.Healthy {
			return 1
		}
		return 0
	})
	rec.Gauge("failover/inflight", "reqs", 0, func() float64 { return float64(len(inflight)) })
	rec.Gauge("failover/backlog", "tasks", 0, func() float64 { return float64(backlog()) })
	instrumentTestbed(tb, rec, chk)

	tb.Sw.Program(func(*nic.Packet) nic.Destination {
		bl := backlogView
		if hr.LB.HWAssist {
			bl = backlog()
		}
		return hr.Route(tb.REM.Health(), bl)
	})
	tb.Sw.Connect(nic.ToHostCPU, func(p *nic.Packet) {
		if f := inflight[p.Seq]; f != nil && !f.done {
			serveHost(f)
		}
	})
	tb.Sw.Connect(nic.ToAccelerator, func(p *nic.Packet) {
		if f := inflight[p.Seq]; f != nil && !f.done {
			serveAccel(f)
		}
	})

	var send func(f *flight)
	onTimeout := func(f *flight) {
		if f.done {
			return
		}
		if f.attempts > pol.MaxRetries {
			dropped++
			f.done = true
			rec.Close(f.span, eng.Now())
			delete(inflight, f.seq)
			chk.Drop(f.seq, f.size, eng.Now())
			return
		}
		eng.After(pol.Backoff(f.attempts), func() {
			if !f.done {
				send(f)
			}
		})
	}
	send = func(f *flight) {
		f.attempts++
		if f.attempts > 1 {
			retries++
		}
		pkt := &nic.Packet{Seq: f.seq, Size: f.size, SentAt: f.firstSent}
		tb.Wire.SendToServer(pkt, tb.Sw.Ingress)
		f.guard = eng.After(pol.Timeout, func() { onTimeout(f) })
	}

	var total uint64
	interval := tr.Interval
	prog := r.newProgress(nIntervals)
	var runInterval func(i int)
	runInterval = func(i int) {
		if i >= nIntervals {
			return
		}
		prog.step("fault " + scn.Name)
		rate := tr.RatesGbps[i]
		end := eng.Now().Add(interval)
		var submit func()
		submit = func() {
			if eng.Now() >= end {
				runInterval(i + 1)
				return
			}
			if rate > 0 {
				total++
				f := &flight{seq: nextSeq, size: nicMTU, firstSent: eng.Now()}
				f.span = rec.Open(obs.TrackRequests, spanRequest, eng.Now())
				nextSeq++
				inflight[f.seq] = f
				chk.Inject(f.seq, f.size, eng.Now())
				sentBytes[intervalOf(f.firstSent)] += float64(nicMTU)
				send(f)
				eng.After(arrivals.Gap(nicMTU, rate*1e9), submit)
			} else {
				eng.At(end, submit)
			}
		}
		submit()
	}
	eng.At(0, func() { runInterval(0) })

	// The software monitor reschedules itself indefinitely, so RunUntil
	// the precomputed horizon rather than Run to drain.
	// Sensors always run during fault replays: a SensorDropout plan needs a
	// live trace to carve its gap into, and the report surfaces how many
	// samples the gap swallowed.
	tb.StartSensors(horizon)
	eng.RunUntil(horizon)

	res := FaultResult{
		Scenario:           scn.Name,
		Total:              total,
		Completed:          completed,
		Retries:            retries,
		Rescued:            rescued,
		FailedOver:         failedOver,
		Transitions:        len(flog.Transitions),
		WireFramesLost:     tb.Wire.Lost(),
		EngineRejected:     tb.REM.Rejected(),
		BMCMissedSamples:   tb.BMC.MissedSamples(),
		YoctoMissedSamples: tb.YoctoWatt.MissedSamples(),
	}
	// Flights still pending at the horizon never resolved: count them
	// with the drops rather than pretending they were delivered. Close
	// spans in sequence order so the exported trace does not depend on
	// map iteration order.
	pending := make([]uint64, 0, len(inflight))
	for seq, f := range inflight {
		if !f.done {
			pending = append(pending, seq)
		}
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	for _, seq := range pending {
		dropped++
		rec.Close(inflight[seq].span, eng.Now())
		chk.Drop(seq, inflight[seq].size, eng.Now())
	}
	res.Dropped = dropped
	if chk != nil {
		chk.VerifyCounts(total, completed, eng.Now())
		if err := chk.Finish(eng.Now()); err != nil {
			panic(err)
		}
		// Stragglers are legal here: a request abandoned at its retry
		// timeout closes its root span while the stale in-service copy
		// still records a child afterwards.
		if err := invariant.CheckSpans(rec, invariant.SpanCheckOpts{AllowStragglers: true}); err != nil {
			panic(err)
		}
	}
	if served := hostServed + snicServed; served > 0 {
		res.HostShare = float64(hostServed) / float64(served)
	}
	tb.SetHostTrafficShare(res.HostShare)
	tb.SetEngineUtil(tb.REM.Utilization())

	var doneBits float64
	res.MinDeliveredFrac = 1
	for i, sent := range sentBytes {
		doneBits += doneBytes[i] * 8
		// Interval 0 has no inflow from a predecessor, so its delivered
		// fraction is structurally short by one latency's worth of mass;
		// skip it rather than report a phantom dip. Near-idle intervals
		// (a handful of packets, as in the hyperscaler trace's valleys)
		// are skipped too: with so few samples the fraction is shot noise,
		// not a throughput dip.
		if i > 0 && sent >= 16*nicMTU {
			if frac := doneBytes[i] / sent; frac < res.MinDeliveredFrac {
				res.MinDeliveredFrac = frac
			}
		}
	}
	res.AvgTputGbps = doneBits / span.Seconds() / 1e9
	res.P99 = histAll.P99()
	res.P99Pre = histPre.P99()
	res.P99Fault = histFault.P99()
	res.P99Post = histPost.P99()
	if lastFaultEraDone > faultEnd {
		res.RecoveryTime = lastFaultEraDone.Sub(faultEnd)
	}
	res.AvgPowerW = float64(tb.Power.Server.Power())

	if rec != nil {
		rec.SetCount("requests.sent", float64(total))
		rec.SetCount("requests.completed", float64(completed))
		rec.SetCount("requests.dropped", float64(dropped))
		rec.SetCount("failover.retries", float64(retries))
		rec.SetCount("failover.rescued", float64(rescued))
		rec.SetCount("failover.failed_over", float64(failedOver))
		rec.SetCount("sensor.bmc.missed", float64(res.BMCMissedSamples))
		rec.SetCount("sensor.yoctowatt.missed", float64(res.YoctoMissedSamples))
		// The sensor traces themselves (with any dropout gap) export as
		// extra series alongside the gauge-sampled power readings.
		rec.AddSeries("power/bmc-trace", "W", tb.BMC.Period, tb.BMC.Trace.Times, tb.BMC.Trace.Values)
		rec.AddSeries("power/yoctowatt-trace", "W", tb.YoctoWatt.Period, tb.YoctoWatt.Trace.Times, tb.YoctoWatt.Trace.Values)
		r.Telemetry.Attach(rec)
	}
	return res
}

// RunFaultedSet replays every scenario, fanning them across the
// runner's parallelism. Each replay builds its own testbed and router
// (mkRouter is called once per scenario so router state is never
// shared), and results merge in scenario order — identical to running
// RunFaulted in a loop.
func (r *Runner) RunFaultedSet(scns []FaultScenario, mkRouter func() *HealthRouter, tr *trace.HyperscalerTrace, hostCores int, seed uint64) []FaultResult {
	out := make([]FaultResult, len(scns))
	r.forEachN(len(scns), func(i int) {
		out[i] = r.RunFaulted(scns[i], mkRouter(), tr, hostCores, seed)
	})
	return out
}
