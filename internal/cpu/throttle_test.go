package cpu

import (
	"testing"

	"repro/internal/sim"
)

func TestThrottleStretchesServiceTime(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, XeonGold6140(), 1, 1)
	full := p.ServiceTime(2100)
	p.SetThrottle(0.5)
	halved := p.ServiceTime(2100)
	if halved != full*2 {
		t.Fatalf("service at half frequency = %v, want %v (2x %v)", halved, full*2, full)
	}
	if p.ThrottleFactor() != 0.5 {
		t.Fatalf("ThrottleFactor = %v, want 0.5", p.ThrottleFactor())
	}
	p.SetThrottle(1)
	if got := p.ServiceTime(2100); got != full {
		t.Fatalf("service after unthrottle = %v, want %v", got, full)
	}
}

func TestThrottleRejectsBadFactors(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, BlueField2Arm(), 1, 1)
	for _, f := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetThrottle(%v) did not panic", f)
				}
			}()
			p.SetThrottle(f)
		}()
	}
}
