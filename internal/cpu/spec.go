// Package cpu models the processors of the testbed: the server's Intel
// Xeon Gold 6140 host CPU, the client's Xeon E5-2640 v3, and the
// BlueField-2 SNIC's eight Arm Cortex-A72 cores (paper Tables 1 and 2).
//
// The model is deliberately coarse: a core executes work measured in
// cycles at a governor-controlled frequency, with multiplicative speedups
// for ISA extensions (AES-NI, AVX/ISA-L, RDRAND) and a memory-subsystem
// penalty supplied by package mem. That is the level at which the paper's
// observations operate — "the SNIC CPU is not capable enough", "the host
// CPU can utilize its ISA extensions" — and it is the level we calibrate.
package cpu

import "fmt"

// Arch is a processor architecture family.
type Arch string

const (
	ArchX86 Arch = "x86-64"
	ArchArm Arch = "armv8"
)

// Extension is a hardware acceleration feature relevant to the paper's
// workloads.
type Extension string

const (
	// ExtAESNI: x86 AES instructions, used by OpenSSL-style AES.
	ExtAESNI Extension = "aes-ni"
	// ExtRDRAND: Intel digital random number generator, used by the
	// paper's host-side crypto runs.
	ExtRDRAND Extension = "rdrand"
	// ExtAVX: AVX/AVX-512 vector units; the host compression path uses
	// them via ISA-L, the REM path via Hyperscan.
	ExtAVX Extension = "avx"
	// ExtNEON: Armv8 SIMD. Present on the A72 but far narrower than AVX.
	ExtNEON Extension = "neon"
)

// Spec describes a processor package.
type Spec struct {
	Name  string
	Arch  Arch
	Cores int
	// BaseHz is the sustained all-core operating frequency. For the host
	// the paper pins 2.1 GHz with the userspace governor (max under TDP,
	// HT and Turbo disabled); the A72s run at 2.0 GHz.
	BaseHz float64
	// MinHz is the lowest frequency the ondemand governor may select.
	MinHz float64
	// IPC is a relative instructions-per-cycle factor versus the Skylake
	// host (host = 1.0). The A72 is a 3-wide in-order-ish core; measured
	// SPEC-rate style gaps versus Skylake land near 0.55.
	IPC float64
	// L3Bytes is the last-level cache capacity.
	L3Bytes int64
	// TDPWatts is the package thermal design power.
	TDPWatts float64
	// Extensions lists acceleration features with their speedup factor
	// (>1 means the feature divides cycle cost by that factor when a
	// workload can use it).
	Extensions map[Extension]float64
}

// Has reports whether the spec has the given extension.
func (s *Spec) Has(ext Extension) bool {
	_, ok := s.Extensions[ext]
	return ok
}

// Speedup returns the cycle-cost divisor for ext (1.0 when absent).
func (s *Spec) Speedup(ext Extension) float64 {
	if f, ok := s.Extensions[ext]; ok && f > 0 {
		return f
	}
	return 1.0
}

func (s *Spec) String() string {
	return fmt.Sprintf("%s (%s, %d cores @ %.1f GHz)", s.Name, s.Arch, s.Cores, s.BaseHz/1e9)
}

// XeonGold6140 returns the server host CPU of paper Table 2: Skylake,
// 18 cores (the paper uses 8 to match the SNIC), 24.75 MB LLC. Frequency
// pinned at 2.1 GHz with the userspace governor.
func XeonGold6140() *Spec {
	return &Spec{
		Name:     "Intel Xeon Gold 6140",
		Arch:     ArchX86,
		Cores:    18,
		BaseHz:   2.1e9,
		MinHz:    1.0e9,
		IPC:      1.0,
		L3Bytes:  24_750 * 1024,
		TDPWatts: 140,
		Extensions: map[Extension]float64{
			ExtAESNI:  6.0, // AES-NI vs table-based AES
			ExtRDRAND: 2.2, // paper: RDRAND-assisted RSA/AES paths
			ExtAVX:    3.0, // ISA-L deflate / Hyperscan vectorized scan
		},
	}
}

// XeonE52640v3 returns the client CPU of paper Table 2 (Broadwell,
// used only as the load generator).
func XeonE52640v3() *Spec {
	return &Spec{
		Name:     "Intel Xeon E5-2640 v3",
		Arch:     ArchX86,
		Cores:    8,
		BaseHz:   2.6e9,
		MinHz:    1.2e9,
		IPC:      0.9,
		L3Bytes:  20 * 1024 * 1024,
		TDPWatts: 90,
		Extensions: map[Extension]float64{
			ExtAESNI: 6.0,
			ExtAVX:   2.0,
		},
	}
}

// BlueField2Arm returns the SNIC processor of paper Table 1: eight
// Cortex-A72 cores at 2.0 GHz, 6 MB shared L3, 16 GB DDR4-3200 onboard.
func BlueField2Arm() *Spec {
	return &Spec{
		Name:     "BlueField-2 Arm (8x Cortex-A72)",
		Arch:     ArchArm,
		Cores:    8,
		BaseHz:   2.0e9,
		MinHz:    1.0e9,
		IPC:      0.55,
		L3Bytes:  6 * 1024 * 1024,
		TDPWatts: 18,
		Extensions: map[Extension]float64{
			ExtNEON: 1.3, // modest SIMD benefit for scanning/compression
		},
	}
}
