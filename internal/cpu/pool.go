package cpu

import (
	"fmt"

	"repro/internal/sim"
)

// Governor selects the frequency-scaling policy of a core pool, mirroring
// the Linux cpufreq governors the paper uses (§3.1): "userspace" pins the
// maximum sustained frequency for performance runs; "ondemand" tracks load
// so an idle host CPU draws less power while the SNIC serves traffic.
type Governor int

const (
	// GovernorUserspace pins BaseHz.
	GovernorUserspace Governor = iota
	// GovernorOndemand runs at BaseHz under load and sinks toward MinHz
	// when idle. In this virtual-time model the distinction matters for
	// power (package power follows frequency), not for service times —
	// ondemand ramps up before serving work, as the real governor does at
	// our packet rates.
	GovernorOndemand
)

func (g Governor) String() string {
	switch g {
	case GovernorUserspace:
		return "userspace"
	case GovernorOndemand:
		return "ondemand"
	default:
		return fmt.Sprintf("governor(%d)", int(g))
	}
}

// Pool is a set of CPU cores available to one execution platform. It wraps
// a sim.Station whose servers are cores; work is expressed in cycles and
// converted to time at the pool's operating frequency.
type Pool struct {
	Spec     *Spec
	eng      *sim.Engine
	station  *sim.Station
	cores    int
	governor Governor
	jitter   *sim.RNG
	// JitterSigma is the log-normal sigma applied to each job's service
	// time. Real per-packet service times wobble with cache state and
	// branch behaviour; this is what gives latency distributions a tail.
	JitterSigma float64
	// throttle scales the operating frequency in (0,1]; fault injection
	// lowers it to model thermal or firmware-forced frequency drops (the
	// BlueField-2's Arm cores throttle hard under sustained load). 0 means
	// unset and is treated as 1.
	throttle float64
}

// NewPool returns a pool of n cores of the given spec. n must not exceed
// the spec's core count. The paper uses 8 host cores to match the SNIC.
func NewPool(eng *sim.Engine, spec *Spec, n int, seed uint64) *Pool {
	if n <= 0 || n > spec.Cores {
		panic(fmt.Sprintf("cpu: pool of %d cores out of range for %s", n, spec.Name))
	}
	return &Pool{
		Spec:        spec,
		eng:         eng,
		station:     sim.NewStation(eng, n),
		cores:       n,
		governor:    GovernorUserspace,
		jitter:      sim.NewRNG(seed),
		JitterSigma: 0.18,
	}
}

// Cores returns the number of cores in the pool.
func (p *Pool) Cores() int { return p.cores }

// SetGovernor selects the frequency-scaling policy.
func (p *Pool) SetGovernor(g Governor) { p.governor = g }

// Governor returns the current policy.
func (p *Pool) Governor() Governor { return p.governor }

// FreqHz returns the operating frequency for active work. Both governors
// serve work at BaseHz (ondemand ramps before work lands at our rates);
// they differ in idle power, reported by IdleFraction. An active throttle
// scales the frequency down, stretching every subsequent service time.
func (p *Pool) FreqHz() float64 {
	if p.throttle > 0 {
		return p.Spec.BaseHz * p.throttle
	}
	return p.Spec.BaseHz
}

// SetThrottle caps the pool's frequency at f × BaseHz for work submitted
// from now on. f must be in (0,1]; 1 restores full frequency.
func (p *Pool) SetThrottle(f float64) {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("cpu: throttle factor %v outside (0,1]", f))
	}
	p.throttle = f
}

// ThrottleFactor returns the active frequency cap (1 when unthrottled).
func (p *Pool) ThrottleFactor() float64 {
	if p.throttle > 0 {
		return p.throttle
	}
	return 1
}

// IdleFreqHz returns the frequency an idle core sits at, which the power
// model maps to idle package power.
func (p *Pool) IdleFreqHz() float64 {
	if p.governor == GovernorOndemand {
		return p.Spec.MinHz
	}
	return p.Spec.BaseHz
}

// ServiceTime converts a cycle cost on this pool into a duration,
// accounting for the spec's relative IPC. Use ExecCycles to actually
// occupy a core.
func (p *Pool) ServiceTime(cycles float64) sim.Duration {
	if cycles < 0 {
		panic("cpu: negative cycle cost")
	}
	effective := cycles / p.Spec.IPC
	return sim.Cycles(effective, p.FreqHz())
}

// ExecCycles schedules a job costing the given cycles on the next free
// core, applying service-time jitter, and calls done when it retires.
// It reports false if the job was shed at an internal queue limit
// (none by default).
func (p *Pool) ExecCycles(cycles float64, done func(start, end sim.Time)) bool {
	svc := p.ServiceTime(cycles)
	if p.JitterSigma > 0 {
		svc = p.jitter.LogNormalDur(svc, p.JitterSigma)
	}
	return p.station.Submit(&sim.Job{Service: svc, Done: done})
}

// ExecDuration schedules a job with an explicit pre-computed service time
// (already jittered or deliberately deterministic).
func (p *Pool) ExecDuration(svc sim.Duration, done func(start, end sim.Time)) bool {
	return p.station.Submit(&sim.Job{Service: svc, Done: done})
}

// SetQueueCapacity bounds the pool's run queue; zero means unbounded.
// Bounding it models NIC RX ring overrun shedding work before the cores.
func (p *Pool) SetQueueCapacity(n int) { p.station.Capacity = n }

// QueueCapacity returns the run-queue bound (zero = unbounded). The
// invariant checker reads it to register exact occupancy limits.
func (p *Pool) QueueCapacity() int { return p.station.Capacity }

// Instrument installs a telemetry observer on the pool's station under
// the given name. Observers are pure recorders (see sim.StationObserver).
func (p *Pool) Instrument(name string, obs sim.StationObserver) {
	p.station.Observe(name, obs)
}

// Utilization returns mean busy fraction across cores.
func (p *Pool) Utilization() float64 { return p.station.Utilization() }

// QueueLen returns the number of jobs waiting for a core.
func (p *Pool) QueueLen() int { return p.station.QueueLen() }

// Busy returns the number of cores currently executing.
func (p *Pool) Busy() int { return p.station.Busy() }

// Completed returns the number of jobs retired.
func (p *Pool) Completed() uint64 { return p.station.Completed() }

// Dropped returns the number of jobs shed at the queue limit.
func (p *Pool) Dropped() uint64 { return p.station.Dropped() }
