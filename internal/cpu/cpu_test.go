package cpu

import (
	"testing"

	"repro/internal/sim"
)

func TestSpecsMatchPaperTables(t *testing.T) {
	host := XeonGold6140()
	if host.BaseHz != 2.1e9 {
		t.Errorf("host pinned freq = %v, want 2.1 GHz (paper §3.1)", host.BaseHz)
	}
	if host.L3Bytes != 24750*1024 {
		t.Errorf("host LLC = %d, want 24.75 MB (Table 2)", host.L3Bytes)
	}
	snic := BlueField2Arm()
	if snic.Cores != 8 || snic.BaseHz != 2.0e9 {
		t.Errorf("SNIC CPU = %d cores @ %v, want 8 @ 2.0 GHz (Table 1)", snic.Cores, snic.BaseHz)
	}
	if snic.Arch != ArchArm || host.Arch != ArchX86 {
		t.Error("architectures wrong")
	}
	client := XeonE52640v3()
	if client.L3Bytes != 20*1024*1024 {
		t.Errorf("client LLC = %d, want 20 MB (Table 2)", client.L3Bytes)
	}
}

func TestSpecExtensions(t *testing.T) {
	host := XeonGold6140()
	if !host.Has(ExtAESNI) || !host.Has(ExtAVX) || !host.Has(ExtRDRAND) {
		t.Error("host should have AES-NI, AVX, RDRAND")
	}
	if host.Has(ExtNEON) {
		t.Error("host should not have NEON")
	}
	snic := BlueField2Arm()
	if snic.Has(ExtAESNI) || snic.Has(ExtAVX) {
		t.Error("A72 should not have x86 extensions")
	}
	if snic.Speedup(ExtAESNI) != 1.0 {
		t.Error("missing extension must have speedup 1.0")
	}
	if host.Speedup(ExtAESNI) <= 1.0 {
		t.Error("present extension must have speedup > 1.0")
	}
}

func TestPoolServiceTimeScalesWithIPCAndFreq(t *testing.T) {
	eng := sim.NewEngine()
	host := NewPool(eng, XeonGold6140(), 8, 1)
	snic := NewPool(eng, BlueField2Arm(), 8, 2)
	const cycles = 21000
	h := host.ServiceTime(cycles)
	s := snic.ServiceTime(cycles)
	// Same nominal cycles must take longer on the A72: lower IPC (0.55)
	// and lower frequency (2.0 vs 2.1 GHz).
	ratio := float64(s) / float64(h)
	want := (1 / 0.55) * (2.1 / 2.0)
	if ratio < want*0.99 || ratio > want*1.01 {
		t.Fatalf("SNIC/host service ratio = %v, want ~%v", ratio, want)
	}
}

func TestPoolParallelism(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, BlueField2Arm(), 8, 3)
	p.JitterSigma = 0
	var done int
	var last sim.Time
	for i := 0; i < 16; i++ {
		p.ExecCycles(2.0e9/1000, func(_, end sim.Time) { // 1 ms of work
			done++
			last = end
		})
	}
	eng.Run()
	if done != 16 {
		t.Fatalf("done = %d, want 16", done)
	}
	// 16 jobs of ~1.8ms effective (IPC 0.55) on 8 cores: two waves.
	wave := p.ServiceTime(2.0e9 / 1000)
	want := sim.Time(2 * wave)
	if last < want-sim.Time(sim.Microsecond) || last > want+sim.Time(sim.Microsecond) {
		t.Fatalf("16 jobs on 8 cores finished at %v, want ~%v", last, want)
	}
}

func TestPoolJitterProducesSpread(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, XeonGold6140(), 1, 7)
	var durations []sim.Duration
	for i := 0; i < 200; i++ {
		p.ExecCycles(1000, func(start, end sim.Time) {
			durations = append(durations, end.Sub(start))
		})
	}
	eng.Run()
	min, max := durations[0], durations[0]
	for _, d := range durations {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min == max {
		t.Fatal("jitter produced identical service times")
	}
}

func TestPoolGovernors(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, XeonGold6140(), 8, 1)
	if p.Governor() != GovernorUserspace {
		t.Fatal("default governor should be userspace")
	}
	if p.IdleFreqHz() != p.Spec.BaseHz {
		t.Fatal("userspace governor must idle at base frequency")
	}
	p.SetGovernor(GovernorOndemand)
	if p.IdleFreqHz() != p.Spec.MinHz {
		t.Fatal("ondemand governor must idle at min frequency")
	}
	if p.FreqHz() != p.Spec.BaseHz {
		t.Fatal("active frequency must stay at base under ondemand")
	}
}

func TestPoolQueueCapacitySheds(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPool(eng, BlueField2Arm(), 1, 1)
	p.SetQueueCapacity(2)
	accepted := 0
	for i := 0; i < 10; i++ {
		if p.ExecCycles(1e6, nil) {
			accepted++
		}
	}
	if accepted != 3 {
		t.Fatalf("accepted = %d, want 3 (1 running + 2 queued)", accepted)
	}
	if p.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", p.Dropped())
	}
	eng.Run()
}

func TestPoolBadSizePanics(t *testing.T) {
	eng := sim.NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("oversized pool did not panic")
		}
	}()
	NewPool(eng, BlueField2Arm(), 9, 1) // A72 has only 8 cores
}
