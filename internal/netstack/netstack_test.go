package netstack

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/sim"
)

func TestStackCostOrdering(t *testing.T) {
	// Per-packet CPU cost must be TCP > UDP >> DPDK > RDMA for a 1 KB
	// packet on x86 — the whole premise of kernel-bypass.
	const size = 1024
	tcp := TCP().RxCycles(cpu.ArchX86, size)
	udp := UDP().RxCycles(cpu.ArchX86, size)
	dpdk := DPDK().RxCycles(cpu.ArchX86, size)
	rdma := RDMA().RxCycles(cpu.ArchX86, size)
	if !(tcp > udp && udp > 10*dpdk && dpdk < 1000 && rdma < 1000) {
		t.Fatalf("cost ordering broken: tcp=%v udp=%v dpdk=%v rdma=%v", tcp, udp, dpdk, rdma)
	}
}

func TestArmPenaltyLargerForSmallPackets(t *testing.T) {
	p := UDP()
	m64 := p.RxCycles(cpu.ArchArm, 64) / p.RxCycles(cpu.ArchX86, 64)
	m1k := p.RxCycles(cpu.ArchArm, 1024) / p.RxCycles(cpu.ArchX86, 1024)
	if m64 <= m1k {
		t.Fatalf("Arm penalty: 64B=%v must exceed 1KB=%v", m64, m1k)
	}
	if m1k < 1.5 {
		t.Fatalf("Arm kernel-stack penalty at 1KB = %v, want > 1.5", m1k)
	}
}

func TestDPDKOneCoreSustains100GbpsAt1KB(t *testing.T) {
	// Paper §3.3: "one host or SNIC CPU core can accomplish the 100 Gbps
	// line rate for 1 KB packets" with DPDK. Check per-packet service
	// time <= inter-arrival at line rate (83.9 ns incl. 24B overhead).
	interArrival := sim.DurationOf(1024+24, 100e9)
	for _, tc := range []struct {
		name string
		spec *cpu.Spec
	}{
		{"host", cpu.XeonGold6140()}, {"snic", cpu.BlueField2Arm()},
	} {
		prof := DPDK()
		cycles := prof.RxCycles(tc.spec.Arch, 1024)
		svc := sim.Cycles(cycles/tc.spec.IPC, tc.spec.BaseHz)
		if svc > interArrival {
			t.Errorf("%s: DPDK 1KB service %v > line-rate budget %v", tc.name, svc, interArrival)
		}
	}
}

func TestRDMAHostPaysLongerPath(t *testing.T) {
	p := RDMA()
	// Host pays extra verb cycles...
	hostRx := p.RxCycles(cpu.ArchX86, 1024)
	snicRx := p.RxCycles(cpu.ArchArm, 1024)
	if hostRx <= p.RxBaseCycles {
		t.Fatal("host RDMA must include verb-path extra cycles")
	}
	_ = snicRx
	// ...and extra fixed latency.
	eng := sim.NewEngine()
	host := NewEndpoint(eng, p, cpu.NewPool(eng, cpu.XeonGold6140(), 1, 1), 1)
	snic := NewEndpoint(eng, p, cpu.NewPool(eng, cpu.BlueField2Arm(), 1, 2), 1)
	var hSum, sSum sim.Duration
	for i := 0; i < 1000; i++ {
		hSum += host.FixedDelay()
		sSum += snic.FixedDelay()
	}
	if hSum <= sSum {
		t.Fatalf("host mean fixed delay %v must exceed SNIC %v", hSum/1000, sSum/1000)
	}
}

func TestUDPThroughputRatioMatchesPaper(t *testing.T) {
	// Fig. 4 / O1: SNIC CPU offers 76.5%–85.7% lower UDP max throughput.
	// Max throughput ratio = host per-packet time / SNIC per-packet time.
	ratio := func(size int) float64 {
		p := UDP()
		hostSpec, snicSpec := cpu.XeonGold6140(), cpu.BlueField2Arm()
		hc := p.RxCycles(hostSpec.Arch, size) + p.TxCycles(hostSpec.Arch, size)
		sc := p.RxCycles(snicSpec.Arch, size) + p.TxCycles(snicSpec.Arch, size)
		hostT := hc / hostSpec.IPC / hostSpec.BaseHz
		snicT := sc / snicSpec.IPC / snicSpec.BaseHz
		return hostT / snicT // = SNIC tput / host tput
	}
	if r := ratio(64); r < 0.11 || r > 0.18 {
		t.Errorf("UDP 64B SNIC/host tput ratio = %.3f, want ~0.143 (85.7%% lower)", r)
	}
	if r := ratio(1024); r < 0.20 || r > 0.27 {
		t.Errorf("UDP 1KB SNIC/host tput ratio = %.3f, want ~0.235 (76.5%% lower)", r)
	}
}

func TestEndpointReceiveChargesPool(t *testing.T) {
	eng := sim.NewEngine()
	pool := cpu.NewPool(eng, cpu.XeonGold6140(), 1, 5)
	ep := NewEndpoint(eng, UDP(), pool, 9)
	handled := false
	ep.Receive(1024, func(_, _ sim.Time) { handled = true })
	eng.Run()
	if !handled {
		t.Fatal("handler not invoked")
	}
	if pool.Completed() != 1 {
		t.Fatal("pool not charged for RX")
	}
	if eng.Now() < sim.Time(UDP().FixedOneWay/2) {
		t.Fatal("fixed latency not applied")
	}
}

func TestEndpointSendThenTransmit(t *testing.T) {
	eng := sim.NewEngine()
	pool := cpu.NewPool(eng, cpu.BlueField2Arm(), 1, 5)
	ep := NewEndpoint(eng, DPDK(), pool, 9)
	var txAt sim.Time
	ep.Send(1500, func() { txAt = eng.Now() })
	eng.Run()
	if txAt == 0 {
		t.Fatal("transmit not invoked")
	}
	if pool.Completed() != 1 {
		t.Fatal("pool not charged for TX")
	}
}

func TestByKind(t *testing.T) {
	for _, k := range []Kind{KindUDP, KindTCP, KindDPDK, KindRDMA} {
		if p := ByKind(k); p.Kind != k {
			t.Errorf("ByKind(%v) returned kind %v", k, p.Kind)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	ByKind(Kind("bogus"))
}

func TestServiceCyclesRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	pool := cpu.NewPool(eng, cpu.XeonGold6140(), 1, 5)
	ep := NewEndpoint(eng, UDP(), pool, 9)
	rt := ep.ServiceCyclesRoundTrip(64, 64)
	want := UDP().RxCycles(cpu.ArchX86, 64) + UDP().TxCycles(cpu.ArchX86, 64)
	if rt != want {
		t.Fatalf("round trip = %v, want %v", rt, want)
	}
}
