// Package netstack models the three networking stacks of the paper's
// methodology (§3.3): kernel TCP/UDP, DPDK poll-mode, and RDMA verbs.
//
// Key Observation 1 of the paper is entirely a statement about where
// stack cycles are spent: the kernel TCP/UDP stack burns thousands of CPU
// cycles per packet (syscalls, skb management, copies, wakeups), which the
// wimpy SNIC cores cannot absorb; DPDK reduces that to tens of cycles; and
// RDMA moves the transport into NIC hardware entirely, leaving the CPU
// only verb post/poll work — which is why RDMA functions are the ones
// worth offloading to the SNIC CPU.
//
// A Profile is a calibrated per-packet cost model; an Endpoint binds a
// profile to a CPU pool and converts packet sizes into core occupancy and
// fixed latency components.
package netstack

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/sim"
)

// Kind enumerates the stack families of paper Table 3.
type Kind string

const (
	KindUDP  Kind = "udp"
	KindTCP  Kind = "tcp"
	KindDPDK Kind = "dpdk"
	KindRDMA Kind = "rdma"
)

// Profile is a per-packet cost model for one stack.
type Profile struct {
	Name string
	Kind Kind

	// RxBaseCycles/RxPerByte: CPU cycles to receive one packet
	// (base + per-byte copy/checksum cost). Tx* likewise for sending.
	RxBaseCycles float64
	RxPerByte    float64
	TxBaseCycles float64
	TxPerByte    float64

	// FixedOneWay is the non-CPU latency each traversal pays: interrupt
	// mitigation, NAPI scheduling, and scheduler wakeups for the kernel
	// stacks; (near) zero for poll-mode DPDK; NIC DMA/doorbell time for
	// RDMA. This term is large for kernel stacks and is what keeps their
	// p99 ratios between platforms far smaller than their service-time
	// ratios (both platforms pay it).
	FixedOneWay sim.Duration
	// FixedSigma is the log-normal sigma of the fixed component.
	FixedSigma float64

	// Arm cores run the kernel stack with worse cache behaviour and no
	// x86-tuned fast paths; the penalty beyond raw IPC is modelled as
	// cycles multiplier = ArmMultBase + ArmMultSizeInv/packetBytes.
	// Small packets (per-packet-overhead dominated) are hit hardest,
	// matching the paper's 85.7% (64 B) vs 76.5% (1 KB) UDP gaps.
	ArmMultBase    float64
	ArmMultSizeInv float64
	// ArmFixedMult scales FixedOneWay on the SNIC CPU: interrupt
	// delivery and scheduler wakeups are slower on the A72 SoC too.
	ArmFixedMult float64

	// TransportInNIC marks RDMA: segmentation/retransmission live in NIC
	// hardware, so Rx/Tx costs above are verb post + CQE poll only.
	TransportInNIC bool
	// HostPathExtra is the additional one-way latency a host-CPU user of
	// NIC transport hardware pays versus the SNIC CPU's shorter on-board
	// path (paper: "it goes through a longer communication path to the
	// hardware" [76]). Applied per operation for RDMA endpoints on the
	// host; zero for the SNIC.
	HostPathExtra sim.Duration
	// HostVerbExtraCycles is extra host CPU work per verb (MMIO doorbell
	// setup, DMA descriptor maintenance across PCIe).
	HostVerbExtraCycles float64
}

// UDP returns the kernel UDP stack profile. Base costs reflect a
// syscall-per-packet receive path (~8 k cycles each way on Skylake).
func UDP() Profile {
	return Profile{
		Name:         "kernel UDP",
		Kind:         KindUDP,
		RxBaseCycles: 8000, RxPerByte: 0.5,
		TxBaseCycles: 8000, TxPerByte: 0.5,
		FixedOneWay:    28 * sim.Microsecond,
		FixedSigma:     0.45,
		ArmMultBase:    2.2,
		ArmMultSizeInv: 94,
		ArmFixedMult:   1.35,
	}
}

// TCP returns the kernel TCP stack profile: heavier than UDP (connection
// state, ACK clocking, congestion control) per packet.
func TCP() Profile {
	return Profile{
		Name:         "kernel TCP",
		Kind:         KindTCP,
		RxBaseCycles: 11500, RxPerByte: 0.7,
		TxBaseCycles: 10500, TxPerByte: 0.7,
		FixedOneWay: 30 * sim.Microsecond,
		FixedSigma:  0.45,
		// TCP's per-connection batching (delayed ACKs, GRO/TSO, socket
		// buffer coalescing) amortizes the Arm cores' per-packet pain
		// far better than connectionless UDP, so its Arm penalty is
		// much gentler — consistent with the paper's Redis-vs-UDP gap.
		ArmMultBase:    1.2,
		ArmMultSizeInv: 10,
		ArmFixedMult:   1.35,
	}
}

// DPDK returns the poll-mode userspace profile: no interrupts, no
// syscalls, batched descriptor processing. One core sustains 100 Gb/s of
// 1 KB packets on either platform (paper §3.3).
func DPDK() Profile {
	return Profile{
		Name:         "DPDK",
		Kind:         KindDPDK,
		RxBaseCycles: 25, RxPerByte: 0.008,
		TxBaseCycles: 25, TxPerByte: 0.007,
		FixedOneWay:    600 * sim.Nanosecond, // NIC DMA + descriptor latency
		FixedSigma:     0.15,
		ArmMultBase:    1.15,
		ArmMultSizeInv: 8,
	}
}

// RDMA returns the verbs profile (Reliable Connection transport, as the
// paper uses to avoid loss effects). CPU cost is post/poll only.
func RDMA() Profile {
	return Profile{
		Name:         "RDMA RC verbs",
		Kind:         KindRDMA,
		RxBaseCycles: 150, RxPerByte: 0,
		TxBaseCycles: 180, TxPerByte: 0,
		FixedOneWay:         1100 * sim.Nanosecond, // NIC transport engine
		FixedSigma:          0.12,
		ArmMultBase:         1.1,
		ArmMultSizeInv:      0,
		TransportInNIC:      true,
		HostPathExtra:       300 * sim.Nanosecond,
		HostVerbExtraCycles: 260,
	}
}

// ByKind returns the canonical profile for a stack kind.
func ByKind(k Kind) Profile {
	switch k {
	case KindUDP:
		return UDP()
	case KindTCP:
		return TCP()
	case KindDPDK:
		return DPDK()
	case KindRDMA:
		return RDMA()
	default:
		panic(fmt.Sprintf("netstack: unknown kind %q", k))
	}
}

// archMult returns the cycle multiplier for running this stack on the
// given architecture with the given packet size.
func (p Profile) archMult(arch cpu.Arch, size int) float64 {
	if arch != cpu.ArchArm {
		return 1.0
	}
	if size < 1 {
		size = 1
	}
	return p.ArmMultBase + p.ArmMultSizeInv/float64(size)
}

// RxCycles returns the nominal cycle cost to receive a size-byte packet
// on the given architecture.
func (p Profile) RxCycles(arch cpu.Arch, size int) float64 {
	c := p.RxBaseCycles + p.RxPerByte*float64(size)
	if p.TransportInNIC && arch == cpu.ArchX86 {
		c += p.HostVerbExtraCycles
	}
	return c * p.archMult(arch, size)
}

// TxCycles returns the nominal cycle cost to send a size-byte packet.
func (p Profile) TxCycles(arch cpu.Arch, size int) float64 {
	c := p.TxBaseCycles + p.TxPerByte*float64(size)
	if p.TransportInNIC && arch == cpu.ArchX86 {
		c += p.HostVerbExtraCycles
	}
	return c * p.archMult(arch, size)
}

// Endpoint binds a stack profile to the CPU pool that runs it. It is the
// software half of a network interface: Receive charges the pool for RX
// processing then hands the payload to the application handler; Send
// charges TX processing then invokes the wire transmit.
type Endpoint struct {
	Profile Profile
	Pool    *cpu.Pool
	rng     *sim.RNG
	eng     *sim.Engine
}

// NewEndpoint returns an endpoint for the profile on the pool.
func NewEndpoint(eng *sim.Engine, prof Profile, pool *cpu.Pool, seed uint64) *Endpoint {
	return &Endpoint{Profile: prof, Pool: pool, rng: sim.NewRNG(seed), eng: eng}
}

// FixedDelay samples the stack's non-CPU one-way latency, including the
// host's longer path to NIC transport hardware when applicable and the
// SNIC SoC's slower interrupt path for kernel stacks.
func (e *Endpoint) FixedDelay() sim.Duration {
	base := e.Profile.FixedOneWay
	if e.Pool.Spec.Arch == cpu.ArchArm && e.Profile.ArmFixedMult > 0 {
		base = sim.Duration(float64(base) * e.Profile.ArmFixedMult)
	}
	d := e.rng.LogNormalDur(base, e.Profile.FixedSigma)
	if e.Profile.TransportInNIC && e.Pool.Spec.Arch == cpu.ArchX86 {
		d += e.Profile.HostPathExtra
	}
	return d
}

// Receive models packet ingress: fixed stack latency, then RX cycles on a
// pool core, then handler runs (still on that core's completion event).
// Packets shed at the pool's queue limit simply vanish, as at an RX ring
// overrun; the pool's Dropped counter records them.
func (e *Endpoint) Receive(size int, handler func(start, end sim.Time)) {
	e.eng.After(e.FixedDelay(), func() {
		e.Pool.ExecCycles(e.Profile.RxCycles(e.Pool.Spec.Arch, size), handler)
	})
}

// Send models packet egress: TX cycles on a pool core, then fixed stack
// latency, then transmit fires (the caller puts the frame on the wire).
func (e *Endpoint) Send(size int, transmit func()) {
	e.Pool.ExecCycles(e.Profile.TxCycles(e.Pool.Spec.Arch, size), func(_, _ sim.Time) {
		e.eng.After(e.FixedDelay(), transmit)
	})
}

// ServiceCyclesRoundTrip is a convenience for capacity math: total CPU
// cycles one request/response exchange costs on this endpoint.
func (e *Endpoint) ServiceCyclesRoundTrip(rxSize, txSize int) float64 {
	arch := e.Pool.Spec.Arch
	return e.Profile.RxCycles(arch, rxSize) + e.Profile.TxCycles(arch, txSize)
}
