GO ?= go

.PHONY: verify build test vet race bench faults

# Tier-1 verification: everything CI and reviewers gate on.
verify: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate the fault-scenario experiment family.
faults:
	$(GO) run ./cmd/snicbench -exp faults
