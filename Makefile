GO ?= go

.PHONY: verify build test vet lint lint-facts race bench bench-compare faults trace-determinism check fuzz-smoke profile-smoke

# Tier-1 verification: everything CI and reviewers gate on.
verify: vet build race lint

vet:
	$(GO) vet ./...

# Build the repo's own analysis suite and run it through the standard
# vet driver. The seven analyzers (wallclock, seedrand, maporder,
# detflow, hotpath, unitcheck, floateq) enforce the determinism,
# allocation and unit-safety invariants of DESIGN.md §9 and §14;
# wallclock/seedrand/maporder violations are transitive, chained
# through per-package fact files the go command threads between units.
lint: bin/snicvet
	$(GO) vet -vettool=bin/snicvet ./...

# Same sweep with the propagated fact database dumped to stderr per
# package — which functions transitively read the wall clock, draw
# unseeded randomness, leak map order, or allocate, and via which call
# chain. SNICVET_FACTS is part of snicvet's -V=full hash, so this never
# serves a cached silent run.
lint-facts: bin/snicvet
	SNICVET_FACTS=1 $(GO) vet -vettool=bin/snicvet ./...

bin/snicvet: FORCE
	$(GO) build -o bin/snicvet ./tools/snicvet

.PHONY: FORCE
FORCE:

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Record sequential vs parallel wall-clock (and verify the two produce
# identical results) for Fig. 4, the S22 fleet simulation, the pipeline
# saturation walks and the flow-offload policy comparison, plus the
# simulator's events/sec and the enabled-telemetry overhead (budget: 15%).
bench-compare:
	$(GO) run ./cmd/benchcompare -out BENCH_parallel.json -fleet-out BENCH_fleet.json -pipeline-out BENCH_pipeline.json -offload-out BENCH_offload.json -events-out BENCH_events.json

# Self-profile determinism: profile.json holds only virtual-state
# counters, so two sequential runs of the same experiment must emit
# byte-identical profiles (at -j>1 racing cache misses make the
# aggregates scheduling-dependent, which is why the diff runs -j1); a
# final -j$(nproc) run just has to parse. The stderr events/s line is
# wall-clock and deliberately NOT part of the comparison.
profile-smoke: bin/snicbench
	./bin/snicbench -exp fig5 -q -j 1 -profile profile_a.json > /dev/null
	./bin/snicbench -exp fig5 -q -j 1 -profile profile_b.json > /dev/null
	cmp profile_a.json profile_b.json
	./bin/snicbench -exp fig4 -func nat -q -j $$(nproc) -profile profile_jN.json > /dev/null
	rm -f profile_a.json profile_b.json profile_jN.json
	@echo "profile smoke: OK"

# Regenerate the fault-scenario experiment family.
faults:
	$(GO) run ./cmd/snicbench -exp faults

# Checked execution: every experiment family under online invariant
# validation (request/byte conservation, causality, clock monotonicity,
# queue sanity). Any broken law panics with a typed violation, so a
# clean exit is the assertion.
check: bin/snicbench
	for e in fig4 fig5 table4 faults fleet pipeline offload; do \
		echo "checked: $$e"; \
		./bin/snicbench -exp $$e -check -q > /dev/null || exit 1; \
	done
	@echo "checked execution: OK"

bin/snicbench: FORCE
	$(GO) build -o bin/snicbench ./cmd/snicbench

# Short-budget native fuzzing over the property layer: the engine
# scheduler, the fault-plan validator, the fleet dispatcher and the
# checked end-to-end runner. FUZZTIME bounds each target's budget so the
# smoke fits CI; run with a bigger FUZZTIME locally to dig.
FUZZTIME ?= 20s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzEngineSchedule$$' -fuzztime $(FUZZTIME) ./internal/sim
	$(GO) test -run '^$$' -fuzz '^FuzzPlanValidate$$' -fuzztime $(FUZZTIME) ./internal/fault
	$(GO) test -run '^$$' -fuzz '^FuzzDispatch$$' -fuzztime $(FUZZTIME) ./internal/fleet
	$(GO) test -run '^$$' -fuzz '^FuzzCheckedRun$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzPipelineRun$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzFlowTable$$' -fuzztime $(FUZZTIME) ./internal/flow
	$(GO) test -run '^$$' -fuzz '^FuzzOffloadRun$$' -fuzztime $(FUZZTIME) ./internal/core

# Telemetry exports must be byte-identical at every parallelism: run the
# same experiment sequentially and fully parallel and diff the traces.
trace-determinism:
	$(GO) run ./cmd/snicbench -exp fig4 -func nat -q -j 1 \
		-trace trace_j1.json -metrics metrics_j1.csv
	$(GO) run ./cmd/snicbench -exp fig4 -func nat -q -j $$(nproc) \
		-trace trace_jN.json -metrics metrics_jN.csv
	cmp trace_j1.json trace_jN.json
	cmp metrics_j1.csv metrics_jN.csv
	rm -f trace_j1.json trace_jN.json metrics_j1.csv metrics_jN.csv
	$(GO) run ./cmd/snicbench -exp fleet -q -j 1 \
		-manifest fleet_manifest_j1.json > fleet_j1.txt
	$(GO) run ./cmd/snicbench -exp fleet -q -j $$(nproc) \
		-manifest fleet_manifest_jN.json > fleet_jN.txt
	cmp fleet_j1.txt fleet_jN.txt
	cmp fleet_manifest_j1.json fleet_manifest_jN.json
	rm -f fleet_j1.txt fleet_jN.txt fleet_manifest_j1.json fleet_manifest_jN.json
	$(GO) run ./cmd/snicbench -exp pipeline -q -j 1 > pipeline_j1.txt
	$(GO) run ./cmd/snicbench -exp pipeline -q -j $$(nproc) > pipeline_jN.txt
	cmp pipeline_j1.txt pipeline_jN.txt
	rm -f pipeline_j1.txt pipeline_jN.txt
	$(GO) run ./cmd/snicbench -exp offload -q -j 1 > offload_j1.txt
	$(GO) run ./cmd/snicbench -exp offload -q -j $$(nproc) > offload_jN.txt
	cmp offload_j1.txt offload_jN.txt
	rm -f offload_j1.txt offload_jN.txt
	@echo "trace determinism: OK"
