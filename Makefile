GO ?= go

.PHONY: verify build test vet race bench bench-compare faults

# Tier-1 verification: everything CI and reviewers gate on.
verify: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Record sequential vs parallel Fig. 4 wall-clock (and verify the two
# produce identical rows) into BENCH_parallel.json.
bench-compare:
	$(GO) run ./cmd/benchcompare -out BENCH_parallel.json

# Regenerate the fault-scenario experiment family.
faults:
	$(GO) run ./cmd/snicbench -exp faults
