// Package repro is the root of the SmartNIC datacenter-tax reproduction.
//
// The public API lives in package snic; the benchmark harness that
// regenerates each of the paper's tables and figures lives in this
// package's bench_test.go (run `go test -bench=. -benchmem .`).
// See README.md for the map of the repository and EXPERIMENTS.md for the
// paper-versus-measured record of every experiment.
package repro
