// Command benchcompare times the Fig. 4 pipeline and the S22 fleet
// simulation sequentially and in parallel on fresh testbeds, verifies
// each pair produces identical results, and records the comparisons as
// JSON — the repo's standing record of what the parallel engine buys on
// a given machine.
//
// Usage:
//
//	benchcompare [-j N] [-out BENCH_parallel.json] [-fleet-out BENCH_fleet.json] [-pipeline-out BENCH_pipeline.json] [-offload-out BENCH_offload.json] [-events-out BENCH_events.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/snic"
)

// eventsComparison is the self-profiling record: the same workload run
// with telemetry disabled and enabled, with the simulator's own event
// counters alongside wall time. events/sec is the simulator's native
// throughput unit — it is what the heap, the free list, and the span
// pool actually move — so regressions show up here before they show up
// in any one experiment's runtime.
type eventsComparison struct {
	Experiment           string  `json:"experiment"`
	Benchmarks           int     `json:"benchmarks"`
	CPUs                 int     `json:"cpus"`
	Events               uint64  `json:"events"`
	EventsEnabled        uint64  `json:"events_telemetry_enabled"`
	HeapPeak             int     `json:"heap_peak"`
	DisabledSec          float64 `json:"telemetry_disabled_sec"`
	EnabledSec           float64 `json:"telemetry_enabled_sec"`
	DisabledEventsPerSec float64 `json:"telemetry_disabled_events_per_sec"`
	EnabledEventsPerSec  float64 `json:"telemetry_enabled_events_per_sec"`
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`
	// AllocsPerEvent is heap allocations per simulated event over the
	// telemetry-enabled leg (mallocs delta / events) — setup, export and
	// amortized growth included, so small and stable but not zero.
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// HotPathAllocsPerOp is testing.AllocsPerRun over a warmed
	// telemetry-enabled closed loop — the steady-state scheduling path
	// alone. The //snicvet:hotpath contract pins it at exactly zero.
	HotPathAllocsPerOp float64 `json:"hot_path_allocs_per_op"`
	Identical          bool    `json:"identical_results"`
}

// comparison is the JSON record benchcompare writes.
type comparison struct {
	Experiment     string  `json:"experiment"`
	Benchmarks     int     `json:"benchmarks"`
	CPUs           int     `json:"cpus"`
	Parallelism    int     `json:"parallelism"`
	SequentialSec  float64 `json:"sequential_sec"`
	ParallelSec    float64 `json:"parallel_sec"`
	Speedup        float64 `json:"speedup"`
	Identical      bool    `json:"identical_results"`
	SimsSequential uint64  `json:"sims_sequential"`
	SimsParallel   uint64  `json:"sims_parallel"`
	// Knees records each saturation walk's knee (pipeline leg only) —
	// the standing evidence that drop and spill measure *different*
	// knees now that every engine exports a queue counter.
	Knees []knee `json:"knees,omitempty"`
	// Policies records each offload policy's outcome (offload leg only)
	// — the standing evidence that the adaptive threshold controller
	// beats both static policies on SLO attainment and drop rate under
	// flow churn.
	Policies []offloadStat `json:"policies,omitempty"`
}

// knee is one (pipeline, policy) walk's located saturation knee.
type knee struct {
	Pipeline string  `json:"pipeline"`
	Policy   string  `json:"policy"`
	KneeGbps float64 `json:"knee_gbps"`
}

// offloadStat is one offload policy's headline numbers on the churn
// scenario.
type offloadStat struct {
	Policy        string  `json:"policy"`
	SLOAttainment float64 `json:"slo_attainment"`
	DropRate      float64 `json:"drop_rate"`
	FastPathShare float64 `json:"fast_path_share"`
	InsertRejects uint64  `json:"insert_rejects"`
	Thrash        uint64  `json:"thrash"`
	ThresholdMin  int     `json:"threshold_min"`
	ThresholdMax  int     `json:"threshold_max"`
	ThresholdEnd  int     `json:"threshold_final"`
}

// writeComparison validates and records one seq-vs-parallel comparison.
func writeComparison(c comparison, path string) {
	if !c.Identical {
		fmt.Fprintf(os.Stderr, "benchcompare: %s: PARALLEL RESULTS DIVERGE FROM SEQUENTIAL\n", c.Experiment)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d benchmarks, sequential %.2fs, parallel(-j %d) %.2fs, speedup %.2fx, identical=%v\n",
		c.Experiment, c.Benchmarks, c.SequentialSec, c.Parallelism, c.ParallelSec, c.Speedup, c.Identical)
}

func main() {
	jobs := flag.Int("j", runtime.NumCPU(), "parallelism for the parallel leg")
	out := flag.String("out", "BENCH_parallel.json", "output path")
	fleetOut := flag.String("fleet-out", "BENCH_fleet.json", "fleet comparison output path")
	pipelineOut := flag.String("pipeline-out", "BENCH_pipeline.json", "pipeline saturation comparison output path")
	offloadOut := flag.String("offload-out", "BENCH_offload.json", "flow-offload policy comparison output path")
	eventsOut := flag.String("events-out", "BENCH_events.json", "events/sec self-profile output path")
	flag.Parse()

	// The software-only group is the costliest Fig. 4 slice: enough work
	// that the comparison means something, small enough to finish fast.
	var subset []*core.Config
	for _, cfg := range core.Catalog() {
		if cfg.Category == core.CategorySoftware {
			subset = append(subset, cfg)
		}
	}

	run := func(j int) ([]core.Fig4Row, float64, uint64) {
		tb := snic.NewTestbed(snic.WithParallelism(j))
		start := time.Now()
		rows := tb.Fig4For(subset)
		return rows, time.Since(start).Seconds(), tb.Simulations()
	}

	seqRows, seqSec, seqSims := run(1)
	parRows, parSec, parSims := run(*jobs)

	c := comparison{
		Experiment:     "fig4/software",
		Benchmarks:     len(subset),
		CPUs:           runtime.NumCPU(),
		Parallelism:    *jobs,
		SequentialSec:  seqSec,
		ParallelSec:    parSec,
		Identical:      reflect.DeepEqual(seqRows, parRows),
		SimsSequential: seqSims,
		SimsParallel:   parSims,
	}
	if parSec > 0 {
		c.Speedup = seqSec / parSec
	}
	writeComparison(c, *out)

	// The fleet leg: a mixed fleet on the scaled diurnal trace. The
	// dispatcher hands every server its own rate series, so the replay
	// fan-out is the parallel engine's natural workload.
	classes := []snic.FleetClass{snic.NICHosts(12), snic.SNICCPUs(8), snic.SNICAccels(4)}
	servers := 0
	for _, cl := range classes {
		servers += cl.Count
	}
	tr := snic.HyperscalerTrace().Subsample(8).Scale(float64(servers)).Compress(400 * snic.Microsecond)
	runFleet := func(j int) (snic.FleetResult, float64, uint64) {
		tb := snic.NewTestbed(snic.WithParallelism(j))
		start := time.Now()
		res, err := tb.RunFleet(snic.FleetConfig{
			Classes: classes, Policy: snic.SLOAware, Trace: tr, Seed: 42,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcompare: fleet:", err)
			os.Exit(1)
		}
		return res, time.Since(start).Seconds(), tb.Simulations()
	}

	seqFleet, seqFleetSec, seqFleetSims := runFleet(1)
	parFleet, parFleetSec, parFleetSims := runFleet(*jobs)

	fc := comparison{
		Experiment:     "fleet/slo-aware",
		Benchmarks:     servers,
		CPUs:           runtime.NumCPU(),
		Parallelism:    *jobs,
		SequentialSec:  seqFleetSec,
		ParallelSec:    parFleetSec,
		Identical:      reflect.DeepEqual(seqFleet, parFleet),
		SimsSequential: seqFleetSims,
		SimsParallel:   parFleetSims,
	}
	if parFleetSec > 0 {
		fc.Speedup = seqFleetSec / parFleetSec
	}
	writeComparison(fc, *fleetOut)

	// The pipeline leg: both tax-chain exemplars' saturation walks under
	// both fallback policies. Every sampled load point is an independent
	// simulation, so the walk fans out cleanly.
	pipeSpecs := func() []*snic.PipelineSpec {
		var out []*snic.PipelineSpec
		for _, mk := range []func() *snic.PipelineSpec{
			snic.CryptoCompressSendPipeline, snic.NATIDSPipeline,
		} {
			for _, pol := range []snic.FallbackPolicy{snic.DropWhenFull{}, snic.SpillToHost{}} {
				ps := mk()
				ps.Fallback = pol
				out = append(out, ps)
			}
		}
		return out
	}
	runPipelines := func(j int) ([]snic.SaturationResult, float64, uint64) {
		tb := snic.NewTestbed(snic.WithParallelism(j))
		start := time.Now()
		var walks []snic.SaturationResult
		for _, ps := range pipeSpecs() {
			walks = append(walks, tb.SaturationSearch(ps, snic.SaturationOpts{Seed: 42}))
		}
		return walks, time.Since(start).Seconds(), tb.Simulations()
	}

	seqPipe, seqPipeSec, seqPipeSims := runPipelines(1)
	parPipe, parPipeSec, parPipeSims := runPipelines(*jobs)

	pc := comparison{
		Experiment:     "pipeline/saturation",
		Benchmarks:     len(seqPipe),
		CPUs:           runtime.NumCPU(),
		Parallelism:    *jobs,
		SequentialSec:  seqPipeSec,
		ParallelSec:    parPipeSec,
		Identical:      reflect.DeepEqual(seqPipe, parPipe),
		SimsSequential: seqPipeSims,
		SimsParallel:   parPipeSims,
	}
	if parPipeSec > 0 {
		pc.Speedup = seqPipeSec / parPipeSec
	}
	for _, w := range seqPipe {
		pc.Knees = append(pc.Knees, knee{Pipeline: w.Pipeline, Policy: w.Policy, KneeGbps: w.KneeGbps})
	}
	writeComparison(pc, *pipelineOut)

	// The offload leg: the three threshold policies on the churn
	// scenario. Each policy is an independent simulation, so the
	// experiment fans out across -j; the JSON keeps the per-policy SLO
	// attainment and drop rate as the standing record that the adaptive
	// controller wins under churn.
	offSpec := snic.DefaultOffloadSpec()
	offPols := snic.DefaultOffloadPolicies()
	runOffload := func(j int) ([]snic.OffloadResult, float64, uint64) {
		tb := snic.NewTestbed(snic.WithParallelism(j))
		start := time.Now()
		rs := tb.OffloadExperiment(offSpec, offPols)
		return rs, time.Since(start).Seconds(), tb.Simulations()
	}

	seqOff, seqOffSec, seqOffSims := runOffload(1)
	parOff, parOffSec, parOffSims := runOffload(*jobs)

	oc := comparison{
		Experiment:     "offload/churn",
		Benchmarks:     len(seqOff),
		CPUs:           runtime.NumCPU(),
		Parallelism:    *jobs,
		SequentialSec:  seqOffSec,
		ParallelSec:    parOffSec,
		Identical:      reflect.DeepEqual(seqOff, parOff),
		SimsSequential: seqOffSims,
		SimsParallel:   parOffSims,
	}
	if parOffSec > 0 {
		oc.Speedup = seqOffSec / parOffSec
	}
	for _, r := range seqOff {
		oc.Policies = append(oc.Policies, offloadStat{
			Policy:        r.Policy,
			SLOAttainment: r.SLOAttainment,
			DropRate:      r.DropRate,
			FastPathShare: r.FastPathShare(),
			InsertRejects: r.InsertRejects,
			Thrash:        r.Thrash,
			ThresholdMin:  r.ThresholdMin,
			ThresholdMax:  r.ThresholdMax,
			ThresholdEnd:  r.ThresholdFinal,
		})
	}
	writeComparison(oc, *offloadOut)

	// The events leg: the Fig. 4 software subset again, sequentially,
	// with the self-profiler attached — once with telemetry off, once
	// with a live collector. The off leg gives the simulator's native
	// events/sec; the pair gives the enabled-telemetry overhead, which
	// the repo bounds at 15%. Sequential runs keep the event count
	// deterministic (no racing cache misses), and best-of-two wall
	// times damp scheduler noise.
	runEvents := func(withTelemetry bool) ([]core.Fig4Row, float64, snic.SelfProfile) {
		best := -1.0
		var rows []core.Fig4Row
		var sp snic.SelfProfile
		for rep := 0; rep < 2; rep++ {
			prof := snic.NewProfiler()
			opts := []snic.Option{snic.WithParallelism(1), snic.WithSelfProfile(prof)}
			if withTelemetry {
				opts = append(opts, snic.WithTelemetry(snic.NewTelemetry()))
			}
			tb := snic.NewTestbed(opts...)
			start := time.Now()
			rows = tb.Fig4For(subset)
			if sec := time.Since(start).Seconds(); best < 0 || sec < best {
				best = sec
			}
			sp = prof.Snapshot()
		}
		return rows, best, sp
	}

	offRows, offSec, offProf := runEvents(false)
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	onRows, onSec, onProf := runEvents(true)
	runtime.ReadMemStats(&msAfter)

	// The alloc gate compares against the committed baseline, so read it
	// before this run overwrites the file. Baselines from before the
	// alloc columns existed skip the gate (nothing to compare).
	var baseline eventsComparison
	gateOn := false
	if old, err := os.ReadFile(*eventsOut); err == nil {
		var raw map[string]json.RawMessage
		if json.Unmarshal(old, &raw) == nil {
			if _, ok := raw["hot_path_allocs_per_op"]; ok && json.Unmarshal(old, &baseline) == nil {
				gateOn = true
			}
		}
	}

	ec := eventsComparison{
		Experiment:  "fig4/software-events",
		Benchmarks:  len(subset),
		CPUs:        runtime.NumCPU(),
		// The enabled leg executes more events — the gauge sampler's
		// virtual-time tickers are real heap traffic — so the two
		// counts are reported separately and only the results must
		// match.
		Events:        offProf.Events,
		EventsEnabled: onProf.Events,
		HeapPeak:      offProf.HeapPeak,
		DisabledSec:   offSec,
		EnabledSec:    onSec,
		Identical:     reflect.DeepEqual(offRows, onRows),
	}
	if offSec > 0 {
		ec.DisabledEventsPerSec = float64(offProf.Events) / offSec
		ec.TelemetryOverheadPct = (onSec - offSec) / offSec * 100
	}
	if onSec > 0 {
		ec.EnabledEventsPerSec = float64(onProf.Events) / onSec
	}
	// runEvents does two reps, each a fresh testbed doing the full event
	// count, so the malloc delta spans 2× the reported events.
	if onProf.Events > 0 {
		ec.AllocsPerEvent = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(2*onProf.Events)
	}
	ec.HotPathAllocsPerOp = hotPathAllocsPerOp()
	if !ec.Identical {
		fmt.Fprintln(os.Stderr, "benchcompare: fig4/software-events: TELEMETRY PERTURBS RESULTS")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(ec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*eventsOut, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d events, %.0f events/s off, %.0f events/s on, telemetry overhead %.1f%%, %.3f allocs/event, %.2f hot-path allocs/op, identical=%v\n",
		ec.Experiment, ec.Events, ec.DisabledEventsPerSec, ec.EnabledEventsPerSec,
		ec.TelemetryOverheadPct, ec.AllocsPerEvent, ec.HotPathAllocsPerOp, ec.Identical)
	if ec.TelemetryOverheadPct > 15 {
		fmt.Fprintf(os.Stderr, "benchcompare: warning: telemetry overhead %.1f%% exceeds the 15%% budget\n", ec.TelemetryOverheadPct)
	}
	if gateOn {
		if ec.HotPathAllocsPerOp > baseline.HotPathAllocsPerOp {
			fmt.Fprintf(os.Stderr, "benchcompare: HOT PATH ALLOCATION REGRESSION: %.2f allocs/op, baseline %.2f\n",
				ec.HotPathAllocsPerOp, baseline.HotPathAllocsPerOp)
			os.Exit(1)
		}
		if baseline.AllocsPerEvent > 0 && ec.AllocsPerEvent > baseline.AllocsPerEvent*1.10 {
			fmt.Fprintf(os.Stderr, "benchcompare: PER-EVENT ALLOCATION REGRESSION: %.3f allocs/event, baseline %.3f (+10%% budget)\n",
				ec.AllocsPerEvent, baseline.AllocsPerEvent)
			os.Exit(1)
		}
	}
}

// hotPathAllocsPerOp measures steady-state allocations of the
// telemetry-enabled scheduling path: a warmed closed loop of jobs
// circulating through a station, a link and a churning flow table with a
// Recorder observing everything — the same loop internal/sim pins at
// zero in TestHotPathZeroAllocs.
func hotPathAllocsPerOp() float64 {
	eng := sim.NewEngine()
	st := sim.NewStation(eng, 2)
	link := sim.NewLink(eng, 100e9, sim.Microsecond)
	table := flow.NewTable(eng, flow.TableConfig{
		Capacity:       8,
		InsertLatency:  2 * sim.Microsecond,
		InsertQueueCap: 4,
		Evict:          flow.EvictLRU,
		ThrashWindow:   sim.Microsecond,
	})
	rec := obs.NewRecorder(1, "hotpath-gate")
	st.Observe("pool", rec)
	link.Observe("wire", rec)
	var next uint64
	for i := 0; i < 8; i++ {
		j := &sim.Job{Service: 3 * sim.Microsecond}
		j.Done = func(start, end sim.Time) {
			next++
			if !table.Lookup(1000, end) {
				table.RequestInsert(1000, 1)
			}
			if id := next % 24; !table.Lookup(id, end) {
				table.RequestInsert(id, 0)
			}
			link.Send(64, nil)
			rec.Count("loop.completions", 1)
			st.Submit(j)
		}
		st.Submit(j)
	}
	for i := 0; i < 20000; i++ {
		eng.Step()
	}
	return testing.AllocsPerRun(50, func() {
		for i := 0; i < 200; i++ {
			eng.Step()
		}
	})
}
