// Command benchcompare times the Fig. 4 pipeline sequentially and in
// parallel on fresh testbeds, verifies the two produce identical rows,
// and records the comparison as JSON — the repo's standing record of
// what the parallel engine buys on a given machine.
//
// Usage:
//
//	benchcompare [-j N] [-out BENCH_parallel.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/snic"
)

// comparison is the JSON record benchcompare writes.
type comparison struct {
	Experiment     string  `json:"experiment"`
	Benchmarks     int     `json:"benchmarks"`
	CPUs           int     `json:"cpus"`
	Parallelism    int     `json:"parallelism"`
	SequentialSec  float64 `json:"sequential_sec"`
	ParallelSec    float64 `json:"parallel_sec"`
	Speedup        float64 `json:"speedup"`
	Identical      bool    `json:"identical_results"`
	SimsSequential uint64  `json:"sims_sequential"`
	SimsParallel   uint64  `json:"sims_parallel"`
}

func main() {
	jobs := flag.Int("j", runtime.NumCPU(), "parallelism for the parallel leg")
	out := flag.String("out", "BENCH_parallel.json", "output path")
	flag.Parse()

	// The software-only group is the costliest Fig. 4 slice: enough work
	// that the comparison means something, small enough to finish fast.
	var subset []*core.Config
	for _, cfg := range core.Catalog() {
		if cfg.Category == core.CategorySoftware {
			subset = append(subset, cfg)
		}
	}

	run := func(j int) ([]core.Fig4Row, float64, uint64) {
		tb := snic.NewTestbed(snic.WithParallelism(j))
		start := time.Now()
		rows := tb.Fig4For(subset)
		return rows, time.Since(start).Seconds(), tb.Simulations()
	}

	seqRows, seqSec, seqSims := run(1)
	parRows, parSec, parSims := run(*jobs)

	c := comparison{
		Experiment:     "fig4/software",
		Benchmarks:     len(subset),
		CPUs:           runtime.NumCPU(),
		Parallelism:    *jobs,
		SequentialSec:  seqSec,
		ParallelSec:    parSec,
		Identical:      reflect.DeepEqual(seqRows, parRows),
		SimsSequential: seqSims,
		SimsParallel:   parSims,
	}
	if parSec > 0 {
		c.Speedup = seqSec / parSec
	}

	if !c.Identical {
		fmt.Fprintln(os.Stderr, "benchcompare: PARALLEL RESULTS DIVERGE FROM SEQUENTIAL")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	fmt.Printf("fig4/software: %d benchmarks, sequential %.2fs, parallel(-j %d) %.2fs, speedup %.2fx, identical=%v\n",
		len(subset), seqSec, *jobs, parSec, c.Speedup, c.Identical)
}
