// Command snicbench regenerates the paper's tables and figures from the
// simulated testbed.
//
// Usage:
//
//	snicbench -exp fig4              # normalized tput/p99, all functions
//	snicbench -exp fig4 -func redis  # one function only
//	snicbench -exp fig5              # REM rate sweep
//	snicbench -exp fig6              # power + energy efficiency
//	snicbench -exp fig7              # hyperscaler trace
//	snicbench -exp table4            # trace replay comparison
//	snicbench -exp table5            # 5-year TCO (paper + measured inputs)
//	snicbench -exp strategies        # §5.3 advisor + load balancer
//	snicbench -exp faults            # trace replay under injected faults
//	snicbench -exp fleet             # datacenter fleet + provisioning search
//	snicbench -exp pipeline          # chained tax pipelines + saturation search
//	snicbench -exp offload           # flow-offload policies under churn
//	snicbench -exp specs             # Tables 1 & 2 hardware specs
//	snicbench -exp catalog           # Table 3 benchmark matrix
//	snicbench -exp functional        # verify the real implementations
//	snicbench -exp all               # everything above
//
// -j N fans independent simulations across N goroutines (default: the
// machine's CPU count). Results are merged in submission order, so the
// output is byte-identical at every -j; progress goes to stderr only.
//
// -check runs every simulation in checked-execution mode: conservation,
// causality, clock-monotonicity and queue-sanity invariants are
// validated online and the process panics with a typed violation the
// moment one breaks. Output is identical with or without -check.
//
// Telemetry flags record every simulated run and export after the
// experiments finish; the exports are byte-identical at every -j too:
//
//	snicbench -exp fig4 -trace t.json      # Chrome/Perfetto trace
//	snicbench -exp fig4 -metrics m.csv     # sampled metrics (CSV)
//	snicbench -exp fig4 -metrics m.json    # sampled metrics (JSON)
//	snicbench -exp fig4 -manifest runs.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tco"
	"repro/snic"
)

// validExps lists every -exp value, in the order "all" runs them.
var validExps = []string{
	"specs", "catalog", "functional",
	"fig4", "fig5", "fig6", "fig7",
	"table4", "table5",
	"strategies", "faults", "fleet", "pipeline", "offload",
	"all",
}

func main() {
	exp := flag.String("exp", "fig4", "experiment: "+strings.Join(validExps, ", "))
	fn := flag.String("func", "", "restrict fig4/fig6 to one function (e.g. redis)")
	jobs := flag.Int("j", runtime.NumCPU(), "parallel simulations (output is identical at every -j)")
	quiet := flag.Bool("q", false, "suppress the stderr progress line")
	check := flag.Bool("check", false, "checked execution: validate conservation/causality invariants online (panics on first violation)")
	traceOut := flag.String("trace", "", "write a Chrome/Perfetto trace of every simulated run to this file")
	metricsOut := flag.String("metrics", "", "write sampled metrics to this file (.json for JSON, otherwise CSV)")
	manifestOut := flag.String("manifest", "", "write per-run telemetry manifests (JSON) to this file")
	profileOut := flag.String("profile", "", "write the simulator self-profile (events, heap depth, cache/pool traffic) as JSON to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a runtime/pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a runtime/pprof heap profile to this file")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: snicbench [-exp NAME] [-func FN] [-j N] [-q] [-check] [-trace F] [-metrics F] [-manifest F] [-profile F] [-cpuprofile F] [-memprofile F]\n\nexperiments:\n")
		for _, e := range validExps {
			fmt.Fprintf(flag.CommandLine.Output(), "  %s\n", e)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	opts := []snic.Option{snic.WithParallelism(*jobs)}
	if *check {
		opts = append(opts, snic.WithInvariantChecks())
	}
	var prog *progressLine
	if !*quiet {
		prog = &progressLine{}
		opts = append(opts, snic.WithProgress(prog.update))
	}
	var tel *snic.Telemetry
	if *traceOut != "" || *metricsOut != "" || *manifestOut != "" {
		tel = snic.NewTelemetry()
		opts = append(opts, snic.WithTelemetry(tel))
	}
	var prof *snic.Profiler
	if *profileOut != "" {
		prof = snic.NewProfiler()
		opts = append(opts, snic.WithSelfProfile(prof))
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snicbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "snicbench: cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	// run dispatches one experiment, telling the progress line which
	// experiment is currently executing so the live status names it.
	run := func(name string, fn func()) {
		prog.setExperiment(name)
		fn()
	}
	dispatch := map[string]func(){
		"fig4":       func() { runFig4(opts, *fn, false) },
		"fig6":       func() { runFig4(opts, *fn, true) },
		"fig5":       func() { runFig5(opts) },
		"fig7":       func() { snic.RenderFig7(os.Stdout, snic.HyperscalerTrace()) },
		"table4":     func() { runTable4(opts) },
		"table5":     func() { runTable5(opts) },
		"strategies": func() { runStrategies(opts) },
		"faults":     func() { runFaults(opts) },
		"fleet":      func() { runFleet(opts) },
		"pipeline":   func() { runPipeline(opts) },
		"offload":    func() { runOffload(opts) },
		"specs":      runSpecs,
		"catalog":    runCatalog,
		"functional": runFunctional,
	}
	start := time.Now()
	if *exp == "all" {
		// Same order the command has always used.
		for _, e := range []string{"specs", "catalog", "functional", "fig4", "fig6",
			"fig5", "fig7", "table4", "table5", "strategies", "faults", "fleet",
			"pipeline", "offload"} {
			run(e, dispatch[e])
		}
	} else if fn, ok := dispatch[*exp]; ok {
		run(*exp, fn)
	} else {
		fmt.Fprintf(os.Stderr, "snicbench: unknown experiment %q (valid: %s)\n",
			*exp, strings.Join(validExps, ", "))
		os.Exit(2)
	}
	elapsed := time.Since(start)

	if tel != nil {
		writeOut(*traceOut, tel.WriteTrace)
		if *metricsOut != "" {
			if strings.HasSuffix(*metricsOut, ".json") {
				writeOut(*metricsOut, tel.WriteMetricsJSON)
			} else {
				writeOut(*metricsOut, tel.WriteMetricsCSV)
			}
		}
		writeOut(*manifestOut, tel.WriteManifests)
	}
	if prof != nil {
		// profile.json holds virtual-state counters only, so sequential
		// profiles are byte-identical across runs; the wall-clock rate is
		// advisory and goes to stderr.
		writeOut(*profileOut, prof.WriteProfile)
		sp := prof.Snapshot()
		if sec := elapsed.Seconds(); sec > 0 && sp.Events > 0 {
			fmt.Fprintf(os.Stderr, "self-profile: %d runs, %d events in %.2fs (%.0f events/s), heap peak %d\n",
				sp.Runs, sp.Events, sec, float64(sp.Events)/sec, sp.HeapPeak)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snicbench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "snicbench: heap profile: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "snicbench: closing %s: %v\n", *memProfile, err)
			os.Exit(1)
		}
	}
}

// writeOut writes one telemetry export to path ("" skips).
func writeOut(path string, write func(io.Writer) error) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snicbench: %v\n", err)
		os.Exit(1)
	}
	bw := bufio.NewWriter(f)
	if err := write(bw); err == nil {
		err = bw.Flush()
	} else {
		fmt.Fprintf(os.Stderr, "snicbench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "snicbench: closing %s: %v\n", path, err)
		os.Exit(1)
	}
}

// progressLine keeps one live status line on stderr naming the
// experiment currently running plus the row counts, clearing itself when
// an experiment completes so finished runs leave no residue. Stdout is
// untouched: the rendered figures stay byte-identical whether or not
// progress is shown. A nil progressLine (quiet mode) is a no-op.
type progressLine struct {
	exp string
}

// setExperiment names the experiment that is about to run.
func (p *progressLine) setExperiment(name string) {
	if p != nil {
		p.exp = name
	}
}

// update is the snic.WithProgress callback.
func (p *progressLine) update(done, total int, label string) {
	const width = 72
	if done >= total {
		fmt.Fprintf(os.Stderr, "\r%*s\r", width, "")
		return
	}
	line := fmt.Sprintf("[%s %d/%d] %s", p.exp, done, total, label)
	if len(line) > width {
		line = line[:width]
	}
	fmt.Fprintf(os.Stderr, "\r%-*s", width, line)
}

func selectedBenchmarks(fn string) []*snic.Benchmark {
	all := snic.Benchmarks()
	if fn == "" {
		return all
	}
	var out []*snic.Benchmark
	for _, b := range all {
		if b.Function == fn {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		fmt.Fprintf(os.Stderr, "snicbench: unknown function %q\n", fn)
		os.Exit(2)
	}
	return out
}

func runFig4(opts []snic.Option, fn string, asFig6 bool) {
	tb := snic.NewTestbed(opts...)
	rows := tb.Fig4For(selectedBenchmarks(fn))
	if asFig6 {
		snic.RenderFig6(os.Stdout, rows)
	} else {
		snic.RenderFig4(os.Stdout, rows)
	}
}

func runFig5(opts []snic.Option) {
	tb := snic.NewTestbed(opts...)
	snic.RenderFig5(os.Stdout, tb.Fig5(nil))
}

func runTable4(opts []snic.Option) {
	tb := snic.NewTestbed(opts...)
	snic.RenderTable4(os.Stdout, tb.Table4())
}

// runTable5 prints the paper-input reproduction and then a fully
// measured variant driven by our own simulated fleets.
func runTable5(opts []snic.Option) {
	fmt.Println("== From the paper's published inputs ==")
	snic.RenderTable5(os.Stdout, snic.PaperTable5())

	fmt.Println("\n== From this testbed's measurements ==")
	tbed := snic.NewTestbed(opts...)
	model := tco.PaperCostModel()
	var rows []tco.Row

	// fio: wire-bound on both fleets.
	fio, _ := snic.LookupBenchmark("fio", "read")
	fioSNIC := tbed.MaxThroughput(fio, snic.SNICCPU)
	fioNIC := tbed.MaxThroughput(fio, snic.HostCPU)
	rows = append(rows, model.Analyze("fio",
		tco.AppMeasurement{ThroughputGbps: fioSNIC.TputGbps, PowerW: fioSNIC.ServerPowerW},
		tco.AppMeasurement{ThroughputGbps: fioNIC.TputGbps, PowerW: fioNIC.ServerPowerW}))

	// OvS at full line rate.
	ovs, _ := snic.LookupBenchmark("ovs", "load100")
	ovsSNIC := tbed.MaxThroughput(ovs, snic.SNICCPU)
	ovsNIC := tbed.MaxThroughput(ovs, snic.HostCPU)
	rows = append(rows, model.Analyze("OVS",
		tco.AppMeasurement{ThroughputGbps: ovsSNIC.TputGbps, PowerW: ovsSNIC.ServerPowerW},
		tco.AppMeasurement{ThroughputGbps: ovsNIC.TputGbps, PowerW: ovsNIC.ServerPowerW}))

	// REM at the hyperscaler trace rate (both fleets sustain it).
	t4 := tbed.Table4()
	rows = append(rows, model.Analyze("REM",
		tco.AppMeasurement{ThroughputGbps: t4[1].AvgTputGbps, PowerW: t4[1].AvgPowerW},
		tco.AppMeasurement{ThroughputGbps: t4[0].AvgTputGbps, PowerW: t4[0].AvgPowerW}))

	// Compression: the engine's 3.5× throughput advantage.
	cmp, _ := snic.LookupBenchmark("compress", "app")
	cmpSNIC := tbed.MaxThroughput(cmp, snic.SNICAccel)
	cmpNIC := tbed.MaxThroughput(cmp, snic.HostCPU)
	rows = append(rows, model.Analyze("Compress",
		tco.AppMeasurement{ThroughputGbps: cmpSNIC.TputGbps, PowerW: cmpSNIC.ServerPowerW},
		tco.AppMeasurement{ThroughputGbps: cmpNIC.TputGbps, PowerW: cmpNIC.ServerPowerW}))

	snic.RenderTable5(os.Stdout, rows)
}

func runStrategies(opts []snic.Option) {
	fmt.Println("== Strategy 2: offload advisor (SLO = 500µs p99) ==")
	adv := snic.NewAdvisor(opts...)
	t := report.NewTable("", "benchmark", "recommendation", "reason")
	for _, rec := range adv.AdviseAll(500 * sim.Microsecond) {
		chosen := string(rec.Chosen)
		if chosen == "" {
			chosen = "(none meets SLO)"
		}
		t.Add(rec.Config.Name(), chosen, rec.Reason)
	}
	t.Render(os.Stdout)

	fmt.Println("\n== Strategy 3: SNIC<->host load balancer under bursts ==")
	tbed := snic.NewTestbed(opts...)
	tr := snic.BurstyTrace(5, 72, 60, 6, 2*snic.Millisecond)
	for _, run := range []struct {
		name string
		res  snic.BalancedResult
	}{
		{"accelerator only", tbed.RunBalanced(snic.LoadBalancer{SpillQueueThreshold: 1 << 30, HWAssist: true}, tr, 8, 1)},
		{"software balancer (paper's prototype)", tbed.RunBalanced(snic.SoftwareBalancer(), tr, 8, 1)},
		{"hardware-assisted balancer (proposed)", tbed.RunBalanced(snic.HardwareBalancer(), tr, 8, 1)},
	} {
		fmt.Printf("  %-40s %v\n", run.name, run.res)
	}
}

// runFaults replays the hyperscaler trace while injecting the three
// stock fault scenarios, with the health-aware router failing REM work
// over to the host. The first row is the fault-free baseline. Scenario
// descriptions print before any replay starts, so stdout is identical
// at every -j even though the scenarios replay concurrently.
func runFaults(opts []snic.Option) {
	fmt.Println("== Fault scenarios: REM trace replay with failover ==")
	tbed := snic.NewTestbed(opts...)
	tr := snic.HyperscalerTrace().Compress(400 * snic.Microsecond)
	router := func() *snic.HealthRouter {
		return snic.NewHealthRouter(snic.HardwareBalancer(), snic.DefaultFailoverPolicy())
	}
	scns := snic.DefaultFaultScenarios(tr.Duration())
	for _, scn := range scns {
		fmt.Printf("  %-12s %s\n", scn.Name+":", scn.Desc)
	}
	base := tbed.RunFaulted(snic.FaultScenario{Name: "baseline"}, router(), tr, 2, 42)
	rows := tbed.RunFaultedSet(scns, router, tr, 2, 42)
	snic.RenderFaults(os.Stdout, base, rows)
}

// runFleet simulates a 36-server heterogeneous datacenter on the
// diurnal trace scaled to fleet-level offered load, compares the four
// dispatch policies, and then runs the provisioning search that
// generalizes Table 5.
func runFleet(opts []snic.Option) {
	tbed := snic.NewTestbed(opts...)
	classes := []snic.FleetClass{snic.NICHosts(16), snic.SNICCPUs(12), snic.SNICAccels(8)}
	servers := 0
	for _, c := range classes {
		servers += c.Count
	}
	// One day of the diurnal trace, subsampled and time-compressed for
	// simulation, scaled so the fleet-level mean is servers × the
	// paper's 0.76 Gb/s per-server regime.
	tr := snic.HyperscalerTrace().Subsample(4).Scale(float64(servers)).Compress(400 * snic.Microsecond)

	fmt.Printf("== Fleet: %d servers (16 NIC hosts, 12 SNIC-CPU, 8 SNIC-accel) ==\n", servers)
	var rows []snic.FleetResult
	for _, pol := range snic.FleetPolicies() {
		res, err := tbed.RunFleet(snic.FleetConfig{
			Classes: classes,
			Policy:  pol,
			Trace:   tr,
			Seed:    42,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "snicbench: fleet %s: %v\n", pol, err)
			os.Exit(1)
		}
		rows = append(rows, res)
	}
	snic.RenderFleet(os.Stdout, rows)
	fmt.Println()
	snic.RenderFleetServers(os.Stdout, rows[2]) // the SLO-aware run

	fmt.Println("\n== Provisioning search (generalized Table 5) ==")
	prov, err := tbed.ProvisionTable5(snic.ProvisionOpts{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "snicbench: provision: %v\n", err)
		os.Exit(1)
	}
	snic.RenderProvision(os.Stdout, prov)
}

// runPipeline measures the chained tax pipelines (§2's
// crypto→compress→send and NAT→IDS sequences) under both fallback
// policies. Each (pipeline, policy) pair gets a run_until_saturation
// load walk; the knee rows come out first so the policies' distinct
// knees read side by side, then the full curves follow. All simulation
// happens before any rendering, so stdout is byte-identical at any -j.
func runPipeline(opts []snic.Option) {
	fmt.Println("== Multi-phase pipelines: heterogeneous fallback + saturation search ==")
	tbed := snic.NewTestbed(opts...)
	var fixed []snic.PipelineMeasurement
	var walks []snic.SaturationResult
	for _, mk := range []func() *snic.PipelineSpec{
		snic.CryptoCompressSendPipeline, snic.NATIDSPipeline,
	} {
		for _, pol := range []snic.FallbackPolicy{snic.DropWhenFull{}, snic.SpillToHost{}} {
			ps := mk()
			ps.Fallback = pol
			sat := tbed.SaturationSearch(ps, snic.SaturationOpts{Seed: 42})
			walks = append(walks, sat)
			knee := sat.Knee
			if sat.KneeGbps <= 0 {
				// Nothing sustained: report the lightest point instead of
				// an empty row.
				knee = sat.Points[0].M
			}
			fixed = append(fixed, knee)
		}
	}
	snic.RenderPipeline(os.Stdout, fixed)
	fmt.Println()
	snic.RenderSaturation(os.Stdout, walks)
}

// runOffload compares the three offload threshold policies —
// static-per-function (offload everything), static-per-flow-threshold
// (fixed K), adaptive (K moved online from the table's churn counters)
// — on the same churny trace against the same bounded eSwitch flow
// table. All simulation happens before rendering, so stdout is
// byte-identical at any -j.
func runOffload(opts []snic.Option) {
	fmt.Println("== Flow offload: bounded eSwitch table + threshold policies under churn ==")
	tbed := snic.NewTestbed(opts...)
	rs := tbed.OffloadExperiment(snic.DefaultOffloadSpec(), snic.DefaultOffloadPolicies())
	snic.RenderOffload(os.Stdout, rs)
}

func runFunctional() {
	fmt.Println("== Execution-driven verification of the real implementations ==")
	cases := []struct {
		fn, variant string
		n           int
	}{
		{"snort", "file_image", 3000}, {"rem", "file_executable", 3000},
		{"nat", "10K", 5000}, {"bm25", "100docs", 500},
		{"redis", "workload_a", 5000}, {"mica", "batch32", 500},
		{"crypto", "aes", 300}, {"crypto", "sha1", 500}, {"crypto", "rsa", 10},
		{"compress", "app", 5}, {"compress", "txt", 5},
		{"ovs", "load100", 8000}, {"fio", "write", 1000},
	}
	failures := 0
	for _, tc := range cases {
		rep, err := snic.RunFunctional(tc.fn, tc.variant, tc.n, 42)
		if err != nil {
			fmt.Fprintf(os.Stderr, "  %s/%s: %v\n", tc.fn, tc.variant, err)
			failures++
			continue
		}
		fmt.Printf("  %v\n", rep)
		failures += rep.Failures
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "FUNCTIONAL FAILURES: %d\n", failures)
		os.Exit(1)
	}
	fmt.Println("all implementations verified against their oracles")
}

func runSpecs() {
	fmt.Println("== Table 1/2: hardware specifications ==")
	for _, s := range []*cpu.Spec{cpu.XeonGold6140(), cpu.BlueField2Arm(), cpu.XeonE52640v3()} {
		fmt.Printf("  %v\n", s)
	}
	for _, m := range []*mem.Spec{mem.ServerDDR4(), mem.BlueField2DDR4(), mem.ClientDDR4()} {
		fmt.Printf("  %v\n", m)
	}
}

func runCatalog() {
	fmt.Println("== Table 3: benchmark matrix ==")
	t := report.NewTable("", "function/variant", "stack", "category", "platforms", "targets (tput/p99)")
	for _, c := range core.Catalog() {
		plats := make([]string, len(c.Platforms))
		for i, p := range c.Platforms {
			plats[i] = string(p)
		}
		target := "-"
		if c.WantTputRatio > 0 {
			target = fmt.Sprintf("%.2fx / %.2fx", c.WantTputRatio, c.WantP99Ratio)
			if c.Assigned {
				target += " (assigned)"
			}
		}
		t.Add(c.Name(), string(c.Stack), string(c.Category), strings.Join(plats, ","), target)
	}
	t.Render(os.Stdout)
}
