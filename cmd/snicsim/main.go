// Command snicsim runs a single benchmark on a chosen platform — either
// at its maximum sustainable throughput (the default) or at a fixed
// offered rate — and prints the full measurement. With -fleet it
// instead simulates a whole datacenter fleet on the scaled diurnal
// trace (DESIGN.md S22).
//
// Usage:
//
//	snicsim -func rem -variant file_image -platform snic-accel
//	snicsim -func udp-echo -variant 64B -platform host-cpu -rate 0.4
//	snicsim -fleet nic-host=16,snic-cpu=12,snic-accel=8 -policy slo-aware
//	snicsim -fleet nic-host=4 -scale 2.5 -slo 500 -j 8
//	snicsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/snic"
)

func main() {
	fn := flag.String("func", "udp-echo", "function name")
	variant := flag.String("variant", "64B", "variant name")
	platform := flag.String("platform", "host-cpu", "host-cpu, snic-cpu, or snic-accel")
	rate := flag.Float64("rate", 0, "fixed offered rate in Gb/s (0 = find max sustainable)")
	requests := flag.Int("requests", 24000, "requests per run")
	list := flag.Bool("list", false, "list benchmarks and exit")
	fleetMix := flag.String("fleet", "", "fleet mode: server mix, e.g. nic-host=16,snic-cpu=12,snic-accel=8")
	policy := flag.String("policy", "slo-aware", "fleet dispatch policy: round-robin, least-outstanding, slo-aware, advisor")
	scale := flag.Float64("scale", 0, "fleet trace mean-rate scale factor (0 = one per-server share per server)")
	slo := flag.Float64("slo", 300, "fleet SLO target on p99 latency (µs)")
	par := flag.Int("j", 0, "fleet parallelism (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 42, "fleet base seed")
	flag.Parse()

	if *list {
		for _, b := range snic.Benchmarks() {
			fmt.Println(snic.Describe(b))
		}
		return
	}

	if *fleetMix != "" {
		if err := runFleet(*fleetMix, *policy, *scale, *slo, *par, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "snicsim: %v\n", err)
			os.Exit(2)
		}
		return
	}

	b, err := snic.LookupBenchmark(*fn, *variant)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snicsim: %v\n", err)
		os.Exit(2)
	}
	plat := snic.Platform(*platform)
	if !b.HasPlatform(plat) {
		fmt.Fprintf(os.Stderr, "snicsim: %s does not run on %s (platforms: %v)\n", b.Name(), plat, b.Platforms)
		os.Exit(2)
	}

	tb := snic.NewTestbed()
	var m snic.Measurement
	if *rate > 0 {
		m = tb.Run(b, plat, *rate, *requests)
	} else {
		m = tb.MaxThroughput(b, plat)
	}

	fmt.Printf("benchmark:   %s\n", snic.Describe(b))
	fmt.Printf("platform:    %s\n", m.Platform)
	if m.OfferedGbps > 0 {
		fmt.Printf("offered:     %.3f Gb/s\n", m.OfferedGbps)
	}
	fmt.Printf("throughput:  %.3f Gb/s (%.0f ops/s, %d ops measured)\n", m.TputGbps, m.TputOps, m.Ops)
	fmt.Printf("latency:     p50 %v  p99 %v  p99.9 %v  mean %v\n",
		m.Latency.P50, m.Latency.P99, m.Latency.P999, m.Latency.Mean)
	fmt.Printf("power:       server %.1f W (BMC domain), SNIC %.2f W (Yocto-Watt domain)\n",
		m.ServerPowerW, m.SNICPowerW)
	fmt.Printf("efficiency:  %.3g bits/J system-wide\n", m.EffBitsPerJoule)
	fmt.Printf("utilization: host %.2f  snic %.2f  engine %.2f\n", m.HostUtil, m.SNICUtil, m.EngineUtil)
}

// parseFleetMix turns "nic-host=16,snic-cpu=12,snic-accel=8" into the
// fleet's server classes.
func parseFleetMix(spec string) ([]snic.FleetClass, error) {
	var classes []snic.FleetClass
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("fleet mix entry %q: want class=count", part)
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("fleet mix entry %q: count must be a positive integer", part)
		}
		switch kv[0] {
		case "nic-host":
			classes = append(classes, snic.NICHosts(n))
		case "snic-cpu":
			classes = append(classes, snic.SNICCPUs(n))
		case "snic-accel":
			classes = append(classes, snic.SNICAccels(n))
		default:
			return nil, fmt.Errorf("fleet mix entry %q: unknown class (want nic-host, snic-cpu, or snic-accel)", part)
		}
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("empty fleet mix")
	}
	return classes, nil
}

func runFleet(mix, policy string, scale, sloUS float64, par int, seed uint64) error {
	classes, err := parseFleetMix(mix)
	if err != nil {
		return err
	}
	servers := 0
	for _, c := range classes {
		servers += c.Count
	}
	if scale <= 0 {
		scale = float64(servers)
	}
	if sloUS <= 0 {
		return fmt.Errorf("-slo must be > 0 µs")
	}

	var opts []snic.Option
	if par > 0 {
		opts = append(opts, snic.WithParallelism(par))
	}
	tb := snic.NewTestbed(opts...)
	tr := snic.HyperscalerTrace().Subsample(4).Scale(scale).Compress(400 * snic.Microsecond)
	res, err := tb.RunFleet(snic.FleetConfig{
		Classes: classes,
		Policy:  snic.FleetPolicy(policy),
		Trace:   tr,
		SLO:     snic.Duration(sloUS * float64(snic.Microsecond)),
		Seed:    seed,
	})
	if err != nil {
		return err
	}
	snic.RenderFleet(os.Stdout, []snic.FleetResult{res})
	fmt.Println()
	snic.RenderFleetServers(os.Stdout, res)
	return nil
}
