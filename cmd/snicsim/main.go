// Command snicsim runs a single benchmark on a chosen platform — either
// at its maximum sustainable throughput (the default) or at a fixed
// offered rate — and prints the full measurement.
//
// Usage:
//
//	snicsim -func rem -variant file_image -platform snic-accel
//	snicsim -func udp-echo -variant 64B -platform host-cpu -rate 0.4
//	snicsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/snic"
)

func main() {
	fn := flag.String("func", "udp-echo", "function name")
	variant := flag.String("variant", "64B", "variant name")
	platform := flag.String("platform", "host-cpu", "host-cpu, snic-cpu, or snic-accel")
	rate := flag.Float64("rate", 0, "fixed offered rate in Gb/s (0 = find max sustainable)")
	requests := flag.Int("requests", 24000, "requests per run")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()

	if *list {
		for _, b := range snic.Benchmarks() {
			fmt.Println(snic.Describe(b))
		}
		return
	}

	b, err := snic.LookupBenchmark(*fn, *variant)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snicsim: %v\n", err)
		os.Exit(2)
	}
	plat := snic.Platform(*platform)
	if !b.HasPlatform(plat) {
		fmt.Fprintf(os.Stderr, "snicsim: %s does not run on %s (platforms: %v)\n", b.Name(), plat, b.Platforms)
		os.Exit(2)
	}

	tb := snic.NewTestbed()
	var m snic.Measurement
	if *rate > 0 {
		m = tb.Run(b, plat, *rate, *requests)
	} else {
		m = tb.MaxThroughput(b, plat)
	}

	fmt.Printf("benchmark:   %s\n", snic.Describe(b))
	fmt.Printf("platform:    %s\n", m.Platform)
	if m.OfferedGbps > 0 {
		fmt.Printf("offered:     %.3f Gb/s\n", m.OfferedGbps)
	}
	fmt.Printf("throughput:  %.3f Gb/s (%.0f ops/s, %d ops measured)\n", m.TputGbps, m.TputOps, m.Ops)
	fmt.Printf("latency:     p50 %v  p99 %v  p99.9 %v  mean %v\n",
		m.Latency.P50, m.Latency.P99, m.Latency.P999, m.Latency.Mean)
	fmt.Printf("power:       server %.1f W (BMC domain), SNIC %.2f W (Yocto-Watt domain)\n",
		m.ServerPowerW, m.SNICPowerW)
	fmt.Printf("efficiency:  %.3g bits/J system-wide\n", m.EffBitsPerJoule)
	fmt.Printf("utilization: host %.2f  snic %.2f  engine %.2f\n", m.HostUtil, m.SNICUtil, m.EngineUtil)
}
