package main

import (
	"testing"

	"repro/internal/tco"
)

func TestBuildModelDefaultsMatchPaper(t *testing.T) {
	m, err := buildModel(0.162, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := tco.PaperCostModel()
	if m != want {
		t.Fatalf("defaults should reproduce the paper's cost model:\n got %+v\nwant %+v", m, want)
	}
}

func TestBuildModelPlumbsFlags(t *testing.T) {
	m, err := buildModel(0.25, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.PowerUSDPerKWh != 0.25 || m.Years != 3 || m.BaselineServers != 8 {
		t.Fatalf("flags not plumbed through: %+v", m)
	}
	// Everything else still comes from the paper.
	paper := tco.PaperCostModel()
	if m.ServerWithSNICUSD != paper.ServerWithSNICUSD || m.ServerWithNICUSD != paper.ServerWithNICUSD {
		t.Fatalf("server prices should stay at the paper's values: %+v", m)
	}
}

func TestBuildModelRejectsNonPhysical(t *testing.T) {
	cases := []struct {
		price, years float64
		servers      int
	}{
		{0, 5, 10},
		{-0.1, 5, 10},
		{0.162, 0, 10},
		{0.162, -2, 10},
		{0.162, 5, 0},
		{0.162, 5, -1},
	}
	for _, c := range cases {
		if _, err := buildModel(c.price, c.years, c.servers); err == nil {
			t.Fatalf("buildModel(%v, %v, %d) should have been rejected", c.price, c.years, c.servers)
		}
	}
}
