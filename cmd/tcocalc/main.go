// Command tcocalc runs the §5.2 TCO arithmetic for arbitrary fleet
// measurements, defaulting to the paper's parameters.
//
// Usage:
//
//	tcocalc                                  # reproduce Table 5
//	tcocalc -app mine -snic-tput 2 -snic-w 255 -nic-tput 1 -nic-w 320
//	tcocalc -app mine ... -kwh 0.25 -years 3 # your electricity and horizon
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tco"
	"repro/snic"
)

func main() {
	app := flag.String("app", "", "application name (empty = reproduce the paper's Table 5)")
	snicTput := flag.Float64("snic-tput", 1, "per-server throughput of the SNIC fleet (any unit)")
	snicW := flag.Float64("snic-w", 255, "per-server power of the SNIC fleet (W)")
	nicTput := flag.Float64("nic-tput", 1, "per-server throughput of the NIC fleet (same unit)")
	nicW := flag.Float64("nic-w", 300, "per-server power of the NIC fleet (W)")
	kwh := flag.Float64("kwh", 0.162, "electricity price ($/kWh)")
	years := flag.Float64("years", 5, "server lifetime (years)")
	servers := flag.Int("servers", 10, "baseline SNIC fleet size")
	flag.Parse()

	if *app == "" {
		snic.RenderTable5(os.Stdout, snic.PaperTable5())
		return
	}
	model := tco.PaperCostModel()
	model.PowerUSDPerKWh = *kwh
	model.Years = *years
	model.BaselineServers = *servers
	row := model.Analyze(*app,
		tco.AppMeasurement{ThroughputGbps: *snicTput, PowerW: *snicW},
		tco.AppMeasurement{ThroughputGbps: *nicTput, PowerW: *nicW})
	snic.RenderTable5(os.Stdout, []tco.Row{row})
	fmt.Printf("\n%v\n", row)
}
