// Command tcocalc runs the §5.2 TCO arithmetic for arbitrary fleet
// measurements, defaulting to the paper's parameters.
//
// Usage:
//
//	tcocalc                                    # reproduce Table 5
//	tcocalc -app mine -snic-tput 2 -snic-w 255 -nic-tput 1 -nic-w 320
//	tcocalc -app mine ... -price 0.25 -years 3 # your electricity and horizon
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tco"
	"repro/snic"
)

func main() {
	app := flag.String("app", "", "application name (empty = reproduce the paper's Table 5)")
	snicTput := flag.Float64("snic-tput", 1, "per-server throughput of the SNIC fleet (any unit)")
	snicW := flag.Float64("snic-w", 255, "per-server power of the SNIC fleet (W)")
	nicTput := flag.Float64("nic-tput", 1, "per-server throughput of the NIC fleet (same unit)")
	nicW := flag.Float64("nic-w", 300, "per-server power of the NIC fleet (W)")
	price := flag.Float64("price", 0.162, "electricity price ($/kWh)")
	kwh := flag.Float64("kwh", 0.162, "deprecated alias for -price")
	years := flag.Float64("years", 5, "server lifetime (years)")
	servers := flag.Int("servers", 10, "baseline SNIC fleet size")
	flag.Parse()

	// Honour the deprecated -kwh spelling unless -price was given too.
	usd := *price
	priceSet, kwhSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "price":
			priceSet = true
		case "kwh":
			kwhSet = true
		}
	})
	if kwhSet && !priceSet {
		usd = *kwh
	}

	model, err := buildModel(usd, *years, *servers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcocalc: %v\n", err)
		os.Exit(2)
	}

	if *app == "" {
		snic.RenderTable5(os.Stdout, snic.PaperTable5())
		return
	}
	row := model.Analyze(*app,
		tco.AppMeasurement{ThroughputGbps: *snicTput, PowerW: *snicW},
		tco.AppMeasurement{ThroughputGbps: *nicTput, PowerW: *nicW})
	snic.RenderTable5(os.Stdout, []tco.Row{row})
	fmt.Printf("\n%v\n", row)
}

// buildModel applies the command-line knobs to the paper's cost model,
// rejecting non-physical values.
func buildModel(priceUSDPerKWh, years float64, servers int) (tco.CostModel, error) {
	if priceUSDPerKWh <= 0 {
		return tco.CostModel{}, fmt.Errorf("electricity price must be > 0 $/kWh, got %v", priceUSDPerKWh)
	}
	if years <= 0 {
		return tco.CostModel{}, fmt.Errorf("lifetime must be > 0 years, got %v", years)
	}
	if servers <= 0 {
		return tco.CostModel{}, fmt.Errorf("baseline fleet must have > 0 servers, got %d", servers)
	}
	m := tco.PaperCostModel()
	m.PowerUSDPerKWh = priceUSDPerKWh
	m.Years = years
	m.BaselineServers = servers
	return m, nil
}
