package repro

// One benchmark per table and figure of the paper's evaluation, plus
// ablations for the design choices DESIGN.md calls out. Each benchmark
// regenerates its experiment end to end in virtual time and reports the
// headline quantities via b.ReportMetric, so `go test -bench=.` doubles
// as the reproduction harness:
//
//	BenchmarkFig4Microbenchmarks   — §3.3 stacks, normalized ratios
//	BenchmarkFig4SoftwareOnly      — software-only function group
//	BenchmarkFig4Accelerated       — hardware-accelerated group
//	BenchmarkFig5REMSweep          — REM throughput/p99 vs offered rate
//	BenchmarkFig6PowerEfficiency   — power + energy-efficiency columns
//	BenchmarkFig7TraceGeneration   — hyperscaler trace synthesis
//	BenchmarkTable4TraceReplay     — REM on the trace, host vs SNIC
//	BenchmarkTable5TCO             — the 5-year TCO arithmetic
//	BenchmarkStrategyLoadBalancer  — §5.3 Strategy 3 ablation
//	BenchmarkAblation*             — batching, staging, governor choices

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tco"
	"repro/internal/trace"
	"repro/snic"
)

// Benchmarks that re-run an experiment build a FRESH testbed every
// iteration: the runner memoizes measurements, so re-measuring on one
// testbed would time cache lookups instead of simulations.

// fig4Subset runs the Fig. 4 pipeline over a category's entries.
func fig4Subset(b *testing.B, cat core.Category, maxEntries int) {
	b.Helper()
	var subset []*core.Config
	for _, cfg := range core.Catalog() {
		if cfg.Category == cat {
			subset = append(subset, cfg)
		}
		if len(subset) == maxEntries {
			break
		}
	}
	var rows []core.Fig4Row
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = snic.NewTestbed().Fig4For(subset)
	}
	b.StopTimer()
	var sumT, sumP float64
	for _, r := range rows {
		sumT += r.TputRatio
		sumP += r.P99Ratio
	}
	if n := float64(len(rows)); n > 0 {
		b.ReportMetric(sumT/n, "meanTputRatio")
		b.ReportMetric(sumP/n, "meanP99Ratio")
	}
}

func BenchmarkFig4Microbenchmarks(b *testing.B) {
	fig4Subset(b, core.CategoryMicro, 8)
}

func BenchmarkFig4SoftwareOnly(b *testing.B) {
	fig4Subset(b, core.CategorySoftware, 16)
}

func BenchmarkFig4Accelerated(b *testing.B) {
	fig4Subset(b, core.CategoryAccelerated, 16)
}

func BenchmarkFig5REMSweep(b *testing.B) {
	rates := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90}
	var points []core.Fig5Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points = snic.NewTestbed().Fig5(rates)
	}
	b.StopTimer()
	// Report the accelerator's cap and the host exe peak (the figure's
	// two headline values).
	var accelMax, exeMax float64
	for _, p := range points {
		if v := p.Curves["accel"].TputGbps; v > accelMax {
			accelMax = v
		}
		if v := p.Curves["host/file_executable"].TputGbps; v > exeMax {
			exeMax = v
		}
	}
	b.ReportMetric(accelMax, "accelCapGbps")
	b.ReportMetric(exeMax, "hostExeMaxGbps")
}

func BenchmarkFig6PowerEfficiency(b *testing.B) {
	// Fig. 6 derives from the same runs as Fig. 4; benchmark the power
	// extremes the paper quotes: compression (3.4–3.8×) and a kernel
	// stack loser.
	cmp, _ := core.Lookup("compress", "app")
	udp, _ := core.Lookup("udp-echo", "64B")
	var rows []core.Fig4Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = snic.NewTestbed().Fig4For([]*core.Config{cmp, udp})
	}
	b.StopTimer()
	for _, r := range rows {
		if r.Config.Function == "compress" {
			b.ReportMetric(r.EffRatio, "compressEffRatio")
		} else {
			b.ReportMetric(r.EffRatio, "udpEffRatio")
		}
	}
}

func BenchmarkFig7TraceGeneration(b *testing.B) {
	var tr *trace.HyperscalerTrace
	for i := 0; i < b.N; i++ {
		tr = trace.NewHyperscalerTrace(trace.DefaultHyperscalerConfig())
	}
	b.ReportMetric(tr.MeanGbps(), "meanGbps")
	b.ReportMetric(tr.PeakGbps(), "peakGbps")
}

func BenchmarkTable4TraceReplay(b *testing.B) {
	var rows []core.TraceReplayResult
	for i := 0; i < b.N; i++ {
		rows = core.NewRunner().Table4(core.DefaultTable4Config())
	}
	b.StopTimer()
	for _, row := range rows {
		switch row.Platform {
		case core.HostCPU:
			b.ReportMetric(row.P99.Micros(), "hostP99us")
			b.ReportMetric(row.AvgPowerW, "hostPowerW")
		case core.SNICAccel:
			b.ReportMetric(row.P99.Micros(), "snicP99us")
			b.ReportMetric(row.AvgPowerW, "snicPowerW")
		}
	}
}

func BenchmarkTable5TCO(b *testing.B) {
	var rows []tco.Row
	for i := 0; i < b.N; i++ {
		rows = tco.PaperTable5()
	}
	b.StopTimer()
	for _, r := range rows {
		if r.Application == "Compress" {
			b.ReportMetric(r.SavingsFrac*100, "compressSavingsPct")
		}
	}
}

func BenchmarkStrategyLoadBalancer(b *testing.B) {
	r := core.NewRunner()
	tr := core.BurstyTrace(5, 72, 30, 6, 2*sim.Millisecond)
	var sw, hw core.BalancedResult
	for i := 0; i < b.N; i++ {
		sw = r.RunBalanced(core.DefaultLoadBalancer(), tr, 8, 1)
		hw = r.RunBalanced(core.HWLoadBalancer(), tr, 8, 1)
	}
	b.StopTimer()
	b.ReportMetric(sw.P99.Micros(), "softwareP99us")
	b.ReportMetric(hw.P99.Micros(), "hardwareP99us")
}

// BenchmarkFig4ParallelSpeedup times the same Fig. 4 subset at
// parallelism 1 and GOMAXPROCS; the ns/op ratio is the engine's
// speedup. (On a single-core box the two coincide — see
// cmd/benchcompare for the recorded comparison.)
func BenchmarkFig4ParallelSpeedup(b *testing.B) {
	var subset []*core.Config
	for _, cfg := range core.Catalog() {
		if cfg.Category == core.CategoryMicro {
			subset = append(subset, cfg)
		}
	}
	for _, j := range []int{1, runtime.GOMAXPROCS(0)} {
		j := j
		b.Run(benchName("j", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				snic.NewTestbed(snic.WithParallelism(j)).Fig4For(subset)
			}
		})
	}
}

// BenchmarkFleetProvisioningSearch times the S22 provisioning search on
// the paper's headline app: binary-searching the minimum NIC-only and
// SNIC-accelerator fleets that serve Compress's target load. A fresh
// testbed per iteration keeps the runner's memo cache cold.
func BenchmarkFleetProvisioningSearch(b *testing.B) {
	var spec snic.ProvisionSpec
	for _, s := range snic.Table5Specs() {
		if s.App == "Compress" {
			spec = s
		}
	}
	var res snic.ProvisionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = snic.NewTestbed().Provision(spec, snic.ProvisionOpts{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.Ratio, "nicPerSnic")
	b.ReportMetric(float64(res.Probes), "probes")
}

// ---- Ablations ----

// BenchmarkAblationAcceleratorBatching quantifies the batch-size choice:
// deeper client pipelines raise engine goodput but multiply latency —
// the throughput/latency trade behind the accelerators' p99.
func BenchmarkAblationAcceleratorBatching(b *testing.B) {
	base, _ := core.Lookup("compress", "app")
	for _, depth := range []int{1, 8, 48} {
		cfg := *base
		cfg.ClosedSNIC = depth
		var m core.Measurement
		b.Run(benchName("depth", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultRunOpts()
				opts.Requests = 4000
				m = core.NewRunner().Run(&cfg, core.SNICAccel, opts)
			}
			b.StopTimer()
			b.ReportMetric(m.TputGbps, "Gbps")
			b.ReportMetric(m.Latency.P99.Micros(), "p99us")
		})
	}
}

// BenchmarkAblationStagingCores shows why the paper dedicates exactly two
// SNIC cores to feeding the REM engine: one core starves it.
func BenchmarkAblationStagingCores(b *testing.B) {
	base, _ := core.Lookup("rem", "file_executable")
	for _, cores := range []int{1, 2, 4} {
		cores := cores
		cfg := *base
		cfg.Mixed = false
		cfg.ReqSize = 1500
		var m core.Measurement
		b.Run(benchName("staging", cores), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := core.NewRunner()
				r.TBConfig.StagingCores = cores
				opts := core.DefaultRunOpts()
				opts.Requests = 8000
				opts.OfferedGbps = 60
				m = r.Run(&cfg, core.SNICAccel, opts)
			}
			b.StopTimer()
			b.ReportMetric(m.TputGbps, "Gbps")
		})
	}
}

// BenchmarkAblationKneeCriterion contrasts the two notions of "maximum
// throughput": raw delivered rate versus the Fig. 5 "reasonable p99"
// knee, on the rule set where they diverge most.
func BenchmarkAblationKneeCriterion(b *testing.B) {
	base, _ := core.Lookup("rem", "file_image")
	for _, tc := range []struct {
		name string
		knee float64
	}{
		{"deliveredOnly", 1e9},
		{"reasonableP99", 3},
	} {
		cfg := *base
		cfg.KneeP99Mult = tc.knee
		var m core.Measurement
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m = core.NewRunner().MaxThroughput(&cfg, core.HostCPU)
			}
			b.StopTimer()
			b.ReportMetric(m.TputGbps, "Gbps")
			b.ReportMetric(m.Latency.P99.Micros(), "p99us")
		})
	}
}

// BenchmarkFig4TelemetryOverhead runs the same Fig. 4 software subset
// with telemetry off and on. The delta between the two sub-benchmarks
// is the full cost of spans + gauges + manifests; the repo's budget is
// 15%, and the benchcompare events leg (BENCH_events.json) records the
// measured number per machine. The simulator's own events/s comes along
// via the self-profiler.
func BenchmarkFig4TelemetryOverhead(b *testing.B) {
	var subset []*core.Config
	for _, cfg := range core.Catalog() {
		if cfg.Category == core.CategorySoftware {
			subset = append(subset, cfg)
		}
		if len(subset) == 8 {
			break
		}
	}
	for _, tel := range []bool{false, true} {
		name := "telemetry=off"
		if tel {
			name = "telemetry=on"
		}
		b.Run(name, func(b *testing.B) {
			prof := snic.NewProfiler()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts := []snic.Option{snic.WithSelfProfile(prof)}
				if tel {
					opts = append(opts, snic.WithTelemetry(snic.NewTelemetry()))
				}
				snic.NewTestbed(opts...).Fig4For(subset)
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(prof.Snapshot().Events)/sec, "events/s")
			}
		})
	}
}

// BenchmarkEngineCore measures the raw simulation engine: events/second
// of a saturated M/M/8 queue — the substrate every experiment rides on.
func BenchmarkEngineCore(b *testing.B) {
	eng := sim.NewEngine()
	st := sim.NewStation(eng, 8)
	rng := sim.NewRNG(1)
	n := 0
	var feed func()
	feed = func() {
		n++
		st.Submit(&sim.Job{Service: rng.Exp(1000)})
		if n < b.N {
			eng.After(rng.Exp(125), feed)
		}
	}
	b.ResetTimer()
	eng.At(0, feed)
	eng.Run()
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return prefix + "=" + string(buf[i:])
}
